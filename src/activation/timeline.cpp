#include "activation/timeline.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace sdf {

void ActivationTimeline::switch_at(double time, ClusterSelection selection) {
  SDF_CHECK(segments_.empty() || segments_.back().time < time,
            "timeline switch points must be strictly increasing");
  segments_.push_back(Segment{time, std::move(selection)});
}

std::optional<ClusterSelection> ActivationTimeline::selection_at(
    double t) const {
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const Segment& s) { return value < s.time; });
  if (it == segments_.begin()) return std::nullopt;
  return std::prev(it)->selection;
}

std::optional<ActivationState> ActivationTimeline::state_at(
    const HierarchicalGraph& g, double t) const {
  const std::optional<ClusterSelection> sel = selection_at(t);
  if (!sel.has_value()) return std::nullopt;
  return ActivationState::from_selection(g, *sel);
}

Status ActivationTimeline::check(const HierarchicalGraph& g) const {
  for (const Segment& seg : segments_) {
    const ActivationState state =
        ActivationState::from_selection(g, seg.selection);
    const auto violations = check_activation_rules(g, state);
    if (!violations.empty()) {
      return Error{strprintf("activation at t=%s violates rule %d: %s",
                             format_double(seg.time).c_str(),
                             violations.front().rule,
                             violations.front().message.c_str())};
    }
  }
  return Status::Ok();
}

std::vector<double> ActivationTimeline::switch_times() const {
  std::vector<double> out;
  out.reserve(segments_.size());
  for (const Segment& s : segments_) out.push_back(s.time);
  return out;
}

}  // namespace sdf
