// Hierarchical activation (§2).
//
// "The hierarchical activation of a specification graph is a boolean
// function that assigns to each edge and to each vertex the value 1
// (activated) or 0 (not activated) at a given time t."
//
// `ActivationState` is that boolean function for one instant: bitsets over
// the nodes, clusters and edges of one hierarchical graph.  States can be
// derived from a `ClusterSelection` (always rule-consistent) or assembled
// manually and checked against the paper's four activation rules:
//
//  1. An activated interface activates exactly one associated cluster.
//  2. An activated cluster activates all its embedded vertices and edges.
//  3. Every activated edge starts and ends at an activated vertex.
//  4. All top-level vertices and interfaces are activated.
#pragma once

#include <string>
#include <vector>

#include "graph/flatten.hpp"
#include "graph/hierarchical_graph.hpp"
#include "util/dyn_bitset.hpp"

namespace sdf {

struct ActivationState {
  DynBitset nodes;     ///< indexed by NodeId
  DynBitset clusters;  ///< indexed by ClusterId (root always set)
  DynBitset edges;     ///< indexed by EdgeId

  [[nodiscard]] bool node_active(NodeId n) const {
    return nodes.test(n.index());
  }
  [[nodiscard]] bool cluster_active(ClusterId c) const {
    return clusters.test(c.index());
  }
  [[nodiscard]] bool edge_active(EdgeId e) const {
    return edges.test(e.index());
  }

  /// Empty (all-inactive) state sized for `g`.
  [[nodiscard]] static ActivationState empty_for(const HierarchicalGraph& g);

  /// The rule-consistent state induced by `selection`: the root cluster plus
  /// everything reachable through selected clusters (rules 1 and 2).
  [[nodiscard]] static ActivationState from_selection(
      const HierarchicalGraph& g, const ClusterSelection& selection);
};

/// One violated activation rule.
struct ActivationViolation {
  int rule;  ///< 1..4 as listed in the paper
  std::string message;
};

/// Checks `state` against the four hierarchical-activation rules of §2.
/// Returns all violations (empty = consistent).
[[nodiscard]] std::vector<ActivationViolation> check_activation_rules(
    const HierarchicalGraph& g, const ActivationState& state);

/// Extracts the cluster selection encoded in a rule-consistent state.
/// Interfaces that are inactive are left unassigned.
[[nodiscard]] ClusterSelection selection_from_state(
    const HierarchicalGraph& g, const ActivationState& state);

}  // namespace sdf
