#include "activation/activation_state.hpp"

#include "util/strings.hpp"

namespace sdf {

ActivationState ActivationState::empty_for(const HierarchicalGraph& g) {
  ActivationState s;
  s.nodes = DynBitset(g.node_count());
  s.clusters = DynBitset(g.cluster_count());
  s.edges = DynBitset(g.edge_count());
  return s;
}

ActivationState ActivationState::from_selection(
    const HierarchicalGraph& g, const ClusterSelection& selection) {
  ActivationState s = empty_for(g);
  std::vector<ClusterId> stack{g.root()};
  while (!stack.empty()) {
    const ClusterId cid = stack.back();
    stack.pop_back();
    s.clusters.set(cid.index());
    const Cluster& c = g.cluster(cid);
    for (NodeId nid : c.nodes) {
      s.nodes.set(nid.index());
      const Node& n = g.node(nid);
      if (n.is_interface()) {
        const ClusterId chosen = selection.selected(nid);
        if (chosen.valid()) stack.push_back(chosen);
      }
    }
    for (EdgeId eid : c.edges) s.edges.set(eid.index());
  }
  return s;
}

std::vector<ActivationViolation> check_activation_rules(
    const HierarchicalGraph& g, const ActivationState& state) {
  std::vector<ActivationViolation> out;
  auto violate = [&](int rule, std::string msg) {
    out.push_back(ActivationViolation{rule, std::move(msg)});
  };

  // Rule 1: each activated interface has exactly one activated cluster.
  for (const Node& n : g.nodes()) {
    if (!n.is_interface() || !state.node_active(n.id)) continue;
    std::size_t active = 0;
    for (ClusterId cid : n.clusters)
      if (state.cluster_active(cid)) ++active;
    if (active != 1)
      violate(1, strprintf("interface '%s' has %zu activated clusters",
                           n.name.c_str(), active));
  }
  // Clusters of inactive interfaces must not be active.
  for (const Cluster& c : g.clusters()) {
    if (c.is_root() || !state.cluster_active(c.id)) continue;
    if (!state.node_active(c.parent))
      violate(1, strprintf("cluster '%s' active but its interface is not",
                           c.name.c_str()));
  }

  // Rule 2: an activated cluster activates all embedded vertices and edges.
  for (const Cluster& c : g.clusters()) {
    const bool active = c.is_root() ? true : state.cluster_active(c.id);
    if (!active) continue;
    for (NodeId nid : c.nodes)
      if (!state.node_active(nid))
        violate(2, strprintf("cluster '%s' active but node '%s' is not",
                             c.name.c_str(), g.node(nid).name.c_str()));
    for (EdgeId eid : c.edges)
      if (!state.edge_active(eid))
        violate(2, strprintf("cluster '%s' active but edge #%u is not",
                             c.name.c_str(), eid.value()));
  }
  // Conversely, nodes of inactive clusters must be inactive.
  for (const Node& n : g.nodes()) {
    if (!state.node_active(n.id)) continue;
    const Cluster& c = g.cluster(n.parent);
    const bool parent_active = c.is_root() || state.cluster_active(c.id);
    if (!parent_active)
      violate(2, strprintf("node '%s' active inside inactive cluster '%s'",
                           n.name.c_str(), c.name.c_str()));
  }

  // Rule 3: every activated edge starts and ends at activated vertices.
  for (const Edge& e : g.edges()) {
    if (!state.edge_active(e.id)) continue;
    if (!state.node_active(e.from) || !state.node_active(e.to))
      violate(3, strprintf("edge #%u active with inactive endpoint",
                           e.id.value()));
  }

  // Rule 4: all top-level vertices and interfaces are activated.
  for (NodeId nid : g.cluster(g.root()).nodes)
    if (!state.node_active(nid))
      violate(4, strprintf("top-level node '%s' not activated",
                           g.node(nid).name.c_str()));

  return out;
}

ClusterSelection selection_from_state(const HierarchicalGraph& g,
                                      const ActivationState& state) {
  ClusterSelection sel;
  for (const Node& n : g.nodes()) {
    if (!n.is_interface() || !state.node_active(n.id)) continue;
    for (ClusterId cid : n.clusters)
      if (state.cluster_active(cid)) sel.select(g, cid);
  }
  return sel;
}

}  // namespace sdf
