// Timed activation: piecewise-constant cluster selections over t in T (= R).
//
// "In order to avoid a loss of generality, we do not restrict
// cluster-selection to system start-up.  Thus, reconfigurable and adaptive
// systems may be modeled via time-dependent switching of clusters."  (§2)
//
// An `ActivationTimeline` is a sequence of switch points; between switches
// the selection (and thus the activation, allocation and binding) is
// constant.  This realizes the paper's timed activation a(t) for
// right-continuous, finitely-switching behaviors — the class every
// run-time-adaptive system in the paper belongs to.
#pragma once

#include <optional>
#include <vector>

#include "activation/activation_state.hpp"
#include "graph/flatten.hpp"

namespace sdf {

class ActivationTimeline {
 public:
  /// A switch: from `time` (inclusive) onwards, `selection` applies.
  struct Segment {
    double time;
    ClusterSelection selection;
  };

  ActivationTimeline() = default;

  /// Appends a switch point; times must be strictly increasing.
  void switch_at(double time, ClusterSelection selection);

  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }
  [[nodiscard]] bool empty() const { return segments_.empty(); }

  /// The selection in effect at time `t` (right-continuous); `nullopt`
  /// before the first switch point.
  [[nodiscard]] std::optional<ClusterSelection> selection_at(double t) const;

  /// The activation state at time `t`; `nullopt` before the first switch.
  [[nodiscard]] std::optional<ActivationState> state_at(
      const HierarchicalGraph& g, double t) const;

  /// Checks every segment's induced activation against the hierarchical
  /// activation rules; reports the time of the first violating segment.
  [[nodiscard]] Status check(const HierarchicalGraph& g) const;

  /// All switch times, ascending.
  [[nodiscard]] std::vector<double> switch_times() const;

 private:
  std::vector<Segment> segments_;
};

}  // namespace sdf
