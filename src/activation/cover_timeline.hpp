// Building timed activations from implementations.
//
// An implementation carries the feasible elementary activations the system
// may switch between; `make_cover_timeline` turns a minimal coverage of
// the implemented clusters into a concrete round-robin `ActivationTimeline`
// — one segment of `dwell` time units per covering activation.  The result
// is the canonical witness that the implementation's flexibility is
// *temporally* realizable: every implemented cluster is active during some
// segment, and every segment satisfies the activation rules.
#pragma once

#include "activation/timeline.hpp"
#include "bind/implementation.hpp"

namespace sdf {

/// Round-robin timeline over a minimal ECA coverage of `impl`, starting at
/// `start`, with `dwell` time units per activation.  Returns an empty
/// timeline when the implementation has no feasible activation.
[[nodiscard]] ActivationTimeline make_cover_timeline(
    const HierarchicalGraph& problem, const Implementation& impl,
    double dwell = 100.0, double start = 0.0);

}  // namespace sdf
