#include "activation/cover_timeline.hpp"

namespace sdf {

ActivationTimeline make_cover_timeline(const HierarchicalGraph& problem,
                                       const Implementation& impl,
                                       double dwell, double start) {
  ActivationTimeline timeline;
  double t = start;
  for (const Eca& eca : impl.minimal_cover(problem)) {
    timeline.switch_at(t, eca.selection);
    t += dwell;
  }
  return timeline;
}

}  // namespace sdf
