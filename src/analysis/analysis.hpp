// Abstract interpretation over specification graphs (static analysis).
//
// The binding problem is NP-complete and EXPLORE may issue thousands of
// solver queries; this module computes *sound* summaries of a specification
// without ever invoking the solver, by abstract interpretation over the
// hierarchy and the compiled dense arrays:
//
//  * **Cost intervals per cluster** — for every problem-graph cluster c,
//    bounds [lo, hi] on `opt(c)`: the cheapest allocation cost that makes c
//    activatable (reachability semantics, Activatability's definition).
//    Computed bottom-up on the hierarchy — min over alternatives, disjoint
//    cover groups over a cluster's own vertices — never by flattening.
//    `hi` is realized by a concrete witness allocation; `hi_cover` is the
//    analogous budget for covering *every* alternative of the subtree.
//
//  * **Resource-capacity relaxation** — a fractional packing bound over the
//    dense demand/footprint arrays that proves an (allocation, activation)
//    pair infeasible before any search: empty candidate domains, per-unit
//    packing of forced assignments, aggregate footprint vs. total capacity,
//    aggregate utilization vs. the schedulability bound, exclusive
//    configurations among forced units.
//
//  * **Comm-reachability closure** — an over-approximation of rule 3: which
//    unit pairs could *ever* communicate (full allocation), and whether a
//    dependence edge admits any communicating candidate pair at all.
//
// Soundness contract: every "infeasible" verdict of the relaxation is a
// proof — the solver would return kInfeasible for the same query (the
// relaxation checks necessary conditions of the solver's constraint system,
// evaluated with at least the solver's epsilon slack).  The relaxation is
// also *monotone* in the allocation lattice: a verdict for allocation A
// holds for every subset of A, which makes it a valid subtree bound for the
// cost-ordered allocation stream.  Bounds assume non-negative cost
// attributes (negative costs are an SDF012 lint error); negative costs are
// clamped to zero, which keeps `lo` sound but may loosen it.
//
// Consumers: lint rules SDF017-SDF021, the ECA prefilter in
// `build_implementation` (skips provably-infeasible solver queries without
// changing fronts, solver_calls or any checkpointed counter), the opt-in
// `use_analysis_bound` stream bound, and the `sdf analyze` CLI subcommand.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

// Header-only uses: SolverOptions (option vocabulary shared with the
// solver) and Eca.  sdf_analysis does NOT link sdf_bind — the prefilter
// call sites live in sdf_bind, which links this library.
#include "bind/eca.hpp"
#include "bind/solver.hpp"
#include "spec/compiled.hpp"
#include "spec/specification.hpp"
#include "util/json.hpp"

namespace sdf {

struct AnalysisOptions {
  /// The solver option set the relaxation must under-approximate: comm
  /// model, utilization bound, exclusive configurations, capacities.  A
  /// prefilter is only sound against solver queries issued with the *same*
  /// options; engines build their run-local analysis from the options they
  /// solve with.
  SolverOptions solver;
};

/// Cost interval of one problem-graph cluster (see file comment).
struct ClusterBounds {
  /// Lower bound on the cost of any allocation activating the cluster;
  /// +inf when no allocation can (the cluster is reachability-dead).
  double lo = 0.0;
  /// Cost of `witness`, a concrete allocation activating the cluster;
  /// +inf when none exists.  Invariant: lo <= opt <= hi.
  double hi = std::numeric_limits<double>::infinity();
  /// Cost of `witness_cover`, a concrete allocation activating *every*
  /// alternative in the cluster's subtree (the budget for the subtree's
  /// full flexibility); +inf when some alternative is unreachable.
  double hi_cover = std::numeric_limits<double>::infinity();
  /// Witness allocations backing `hi` / `hi_cover`; empty-universe sets
  /// when the corresponding bound is infinite.
  AllocSet witness;
  AllocSet witness_cover;

  /// True iff some allocation activates the cluster at all.
  [[nodiscard]] bool reachable() const {
    return hi != std::numeric_limits<double>::infinity();
  }
};

/// Whole-spec static analysis; immutable after construction, safe to share
/// across threads (all queries are const and allocate only local scratch).
class SpecAnalysis {
 public:
  /// Builds every summary in one pass over the hierarchy.  `cs` must
  /// outlive the instance.
  explicit SpecAnalysis(const CompiledSpec& cs,
                        const AnalysisOptions& options = {});

  [[nodiscard]] const CompiledSpec& compiled() const { return cs_; }
  [[nodiscard]] const AnalysisOptions& options() const { return options_; }

  // ---- cost intervals -------------------------------------------------------

  [[nodiscard]] const ClusterBounds& bounds(ClusterId cluster) const {
    return bounds_[cluster.index()];
  }
  [[nodiscard]] const ClusterBounds& root_bounds() const {
    return bounds_[cs_.problem().root().index()];
  }

  /// Cost of covering every alternative of the whole problem graph except
  /// the subtree rooted at `skip` (lint SDF017 compares an alternative's
  /// `lo` against the rest of the spec); +inf when the remainder itself has
  /// an unreachable alternative.
  [[nodiscard]] double cover_cost_excluding(ClusterId skip) const;

  // ---- communication closure ------------------------------------------------

  /// True iff units `a` and `b` could communicate under *some* allocation
  /// (evaluated under the full allocation — comm feasibility is monotone).
  /// Always true under CommModel::kAnyPath (conservatively not analyzed).
  [[nodiscard]] bool comm_possible(AllocUnitId a, AllocUnitId b) const;

  /// True iff a dependence edge between processes `p` and `q` admits at
  /// least one candidate unit pair that could ever communicate.  False is a
  /// proof that every binding activating both endpoints violates rule 3.
  [[nodiscard]] bool edge_comm_satisfiable(NodeId p, NodeId q) const;

  // ---- relaxation (the pruning oracle) --------------------------------------

  /// Proof attempt for one solver query: true means the solver would return
  /// kInfeasible for (alloc, eca) under `options().solver` — the caller may
  /// skip the search.  False proves nothing.
  [[nodiscard]] bool eca_infeasible(const AllocSet& alloc,
                                    const Eca& eca) const;

  /// ECA-independent form over the mandatory core (processes active in
  /// *every* elementary activation): true proves no activation of the
  /// problem graph has a feasible binding under `alloc` — and, by
  /// monotonicity, under any subset of `alloc`.  Valid as a
  /// `CostOrderedAllocations` branch bound on optimistic completions.
  [[nodiscard]] bool allocation_infeasible(const AllocSet& alloc) const;

  /// Relaxation over the mandatory core of `cluster`'s own subtree (its
  /// vertices plus, recursively, those behind single-alternative
  /// interfaces) under the *full* allocation: true proves every activation
  /// containing `cluster` is infeasible under every allocation — adding
  /// processes or removing units only adds constraints.  Lint SDF018.
  [[nodiscard]] bool cluster_core_infeasible(ClusterId cluster) const;

  // ---- mandatory core -------------------------------------------------------

  /// Processes active in every elementary activation: the root cluster's
  /// vertices plus, recursively, the vertices behind single-alternative
  /// interfaces.  Ascending node order.
  [[nodiscard]] const std::vector<NodeId>& mandatory_processes() const {
    return mandatory_procs_;
  }
  /// Dependence edges with both endpoints in the mandatory core.
  [[nodiscard]] const std::vector<std::pair<NodeId, NodeId>>&
  mandatory_edges() const {
    return mandatory_edges_;
  }

  // ---- reporting ------------------------------------------------------------

  /// {"spec", "clusters": [{cluster, lo, hi, hi_cover, reachable,
  /// witness_units}...], "front_provably_empty", "mandatory_processes",
  /// "comm_unsatisfiable_edges"}.
  [[nodiscard]] Json to_json() const;

  /// Human-readable per-cluster bound table.
  [[nodiscard]] std::string to_table() const;

 private:
  struct VertexDomain;  // scratch view of one process's live candidates

  void compute_bounds(ClusterId cluster);
  void compute_mandatory_core();
  /// Collects the mandatory core of `cluster`'s subtree: processes active
  /// whenever `cluster` is, and the clusters visited on the way.
  void collect_core(ClusterId cluster, std::vector<NodeId>& procs,
                    std::vector<ClusterId>& visited) const;
  /// Shared relaxation kernel over an explicit process set; `edges` holds
  /// index pairs into `procs`.
  [[nodiscard]] bool relaxation_infeasible(
      const AllocSet& alloc, const std::vector<NodeId>& procs,
      const std::vector<double>& demand, const std::vector<double>& footprint,
      const std::vector<std::pair<std::size_t, std::size_t>>& edges) const;

  const CompiledSpec& cs_;
  AnalysisOptions options_;
  std::vector<ClusterBounds> bounds_;  // by problem ClusterId
  AllocSet full_alloc_;                // every unit set
  std::vector<NodeId> mandatory_procs_;
  std::vector<std::pair<NodeId, NodeId>> mandatory_edges_;
  // Dense copies for the mandatory core, index-aligned with
  // `mandatory_procs_`; edge pairs as indices into it.
  std::vector<double> mandatory_demand_;
  std::vector<double> mandatory_footprint_;
  std::vector<std::pair<std::size_t, std::size_t>> mandatory_edge_idx_;
};

}  // namespace sdf
