#include "analysis/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "graph/validate.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace sdf {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Same slack the solver applies to its per-unit accumulations.
constexpr double kEps = 1e-9;

/// Clamped unit cost for lower bounds: negative costs (an SDF012 defect)
/// would make "allocation cost >= any member's cost" unsound, so they
/// contribute zero instead.
double clamped_cost(const AllocUnit& u) { return std::max(0.0, u.cost); }

std::string bound_str(double v) {
  return std::isinf(v) ? "inf" : format_double(v);
}

Json bound_json(double v) {
  return std::isinf(v) ? Json() : Json(v);
}

}  // namespace

SpecAnalysis::SpecAnalysis(const CompiledSpec& cs,
                           const AnalysisOptions& options)
    : cs_(cs), options_(options) {
  full_alloc_ = cs_.make_alloc_set();
  for (std::size_t i = 0; i < cs_.unit_count(); ++i) full_alloc_.set(i);
  bounds_.resize(cs_.problem().cluster_count());
  compute_bounds(cs_.problem().root());
  compute_mandatory_core();
}

void SpecAnalysis::compute_bounds(ClusterId cid) {
  const HierarchicalGraph& p = cs_.problem();
  const Cluster& c = p.cluster(cid);

  // Post-order: every nested alternative is bounded before its parent.
  for (NodeId nid : c.nodes) {
    const Node& n = p.node(nid);
    if (!n.is_interface()) continue;
    for (ClusterId child : n.clusters) compute_bounds(child);
  }

  ClusterBounds b;
  b.witness = cs_.make_alloc_set();
  b.witness_cover = cs_.make_alloc_set();
  bool unmappable_vertex = false;  // some own vertex has no candidate at all
  bool reach_ok = true;            // `witness` activates the cluster
  bool cover_ok = true;            // `witness_cover` covers every alternative

  // Own vertices: cheapest candidate into the witnesses, and the
  // disjoint-cover-group lower bound.  Two vertices whose reachable-unit
  // sets overlap might share one unit (bound: max of their minima); groups
  // with disjoint unions need distinct units (bounds add up).
  struct Group {
    DynBitset units;
    double bound = 0.0;
  };
  std::vector<Group> groups;
  for (NodeId nid : c.nodes) {
    const Node& n = p.node(nid);
    if (n.is_interface()) continue;
    const DynBitset& reach = cs_.reachable_units(nid);
    if (reach.none()) {
      unmappable_vertex = true;
      reach_ok = cover_ok = false;
      continue;
    }
    double best_cost = kInf;
    std::size_t best = 0;
    for (AllocUnitId u : cs_.reachable_unit_list(nid)) {
      const double cost = clamped_cost(cs_.unit(u));
      if (cost < best_cost) {
        best_cost = cost;
        best = u.index();
      }
    }
    b.witness.set(best);
    b.witness_cover.set(best);

    Group merged{reach, best_cost};
    std::vector<Group> rest;
    rest.reserve(groups.size());
    for (Group& g : groups) {
      if (g.units.intersects(merged.units)) {
        merged.units |= g.units;
        merged.bound = std::max(merged.bound, g.bound);
      } else {
        rest.push_back(std::move(g));
      }
    }
    rest.push_back(std::move(merged));
    groups = std::move(rest);
  }
  double lo = 0.0;
  for (const Group& g : groups) lo += g.bound;

  // Interfaces: min over alternatives for activation, all alternatives for
  // coverage.
  for (NodeId nid : c.nodes) {
    const Node& n = p.node(nid);
    if (!n.is_interface()) continue;
    double min_lo = kInf;
    double best_hi = kInf;
    ClusterId best_child;
    for (ClusterId child : n.clusters) {
      const ClusterBounds& cb = bounds_[child.index()];
      min_lo = std::min(min_lo, cb.lo);
      if (cb.hi < best_hi) {
        best_hi = cb.hi;
        best_child = child;
      }
      if (cb.hi_cover == kInf) {
        cover_ok = false;
      } else {
        b.witness_cover |= cb.witness_cover;
      }
    }
    lo = std::max(lo, min_lo);  // stays kInf when every alternative is dead
    if (best_child.valid()) {
      b.witness |= bounds_[best_child.index()].witness;
    } else {
      reach_ok = false;  // no refinement is reachable (or Gamma is empty)
      cover_ok = false;
    }
  }

  b.lo = unmappable_vertex ? kInf : lo;
  b.hi = reach_ok ? cs_.allocation_cost(b.witness) : kInf;
  b.hi_cover = cover_ok ? cs_.allocation_cost(b.witness_cover) : kInf;
  bounds_[cid.index()] = std::move(b);
}

double SpecAnalysis::cover_cost_excluding(ClusterId skip) const {
  const HierarchicalGraph& p = cs_.problem();
  AllocSet cover = cs_.make_alloc_set();
  // Recursive union of per-cluster cover witnesses, skipping `skip`'s
  // subtree; false = the remainder has an unreachable part.
  const auto visit = [&](const auto& self, ClusterId cid) -> bool {
    if (cid == skip) return true;
    const Cluster& c = p.cluster(cid);
    for (NodeId nid : c.nodes) {
      const Node& n = p.node(nid);
      if (n.is_interface()) {
        bool any_child = false;
        for (ClusterId child : n.clusters) {
          if (child == skip) continue;
          any_child = true;
          if (!self(self, child)) return false;
        }
        if (!any_child) return false;  // `skip` was the only refinement
        continue;
      }
      double best_cost = kInf;
      std::size_t best = 0;
      for (AllocUnitId u : cs_.reachable_unit_list(nid)) {
        const double cost = clamped_cost(cs_.unit(u));
        if (cost < best_cost) {
          best_cost = cost;
          best = u.index();
        }
      }
      if (best_cost == kInf) return false;  // unmappable vertex
      cover.set(best);
    }
    return true;
  };
  if (!visit(visit, p.root())) return kInf;
  return cs_.allocation_cost(cover);
}

bool SpecAnalysis::comm_possible(AllocUnitId a, AllocUnitId b) const {
  switch (options_.solver.comm_model) {
    case CommModel::kDirectOnly:
      return cs_.tops_direct(a, b);
    case CommModel::kOneHopBus:
      // Monotone in the allocation, so the full allocation is the closure.
      return cs_.comm_reachable(full_alloc_, a, b);
    case CommModel::kAnyPath:
      // Multi-hop routing is not analyzed; claim nothing.
      return true;
  }
  return true;
}

bool SpecAnalysis::edge_comm_satisfiable(NodeId p, NodeId q) const {
  const std::span<const CompiledMapping> pm = cs_.mappings_of(p);
  const std::span<const CompiledMapping> qm = cs_.mappings_of(q);
  // An unmappable endpoint is SDF009's business, not a comm claim.
  if (pm.empty() || qm.empty()) return true;
  for (const CompiledMapping& a : pm) {
    if (!a.unit.valid()) continue;
    for (const CompiledMapping& b : qm) {
      if (!b.unit.valid()) continue;
      if (comm_possible(a.unit, b.unit)) return true;
    }
  }
  return false;
}

bool SpecAnalysis::relaxation_infeasible(
    const AllocSet& alloc, const std::vector<NodeId>& procs,
    const std::vector<double>& demand, const std::vector<double>& footprint,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) const {
  const SolverOptions& so = options_.solver;
  const bool check_util = so.utilization_bound > 0.0;
  const bool check_cap = so.enforce_capacities;
  const std::size_t n = procs.size();

  // Mirrors the solver's domain construction: a candidate is live iff its
  // unit is allocated and the mapping survives the individually-bad filter
  // (a single assignment already over the utilization bound or the unit
  // capacity can never be part of a feasible binding).
  const auto live = [&](const CompiledMapping& m, std::size_t i) {
    if (!m.unit.valid() || !alloc.test(m.unit.index())) return false;
    if (check_util && demand[i] * m.latency > so.utilization_bound + kEps)
      return false;
    if (check_cap) {
      const double cap = cs_.unit_capacity(m.unit);
      if (cap > 0.0 && footprint[i] > cap + kEps) return false;
    }
    return true;
  };

  DynBitset live_union(cs_.unit_count());
  std::vector<double> forced_fp;    // summed footprint of forced processes
  std::vector<double> forced_util;  // summed minimal utilization, forced
  double total_fp = 0.0;
  double total_util = 0.0;
  // One forced configuration cluster per device top; a second distinct one
  // proves an exclusive-configuration conflict.
  std::vector<std::pair<NodeId, ClusterId>> forced_configs;

  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const CompiledMapping> maps = cs_.mappings_of(procs[i]);
    AllocUnitId single;
    bool multiple = false;
    double min_util = kInf;
    for (const CompiledMapping& m : maps) {
      if (!live(m, i)) continue;
      live_union.set(m.unit.index());
      if (!single.valid()) {
        single = m.unit;
      } else if (single != m.unit) {
        multiple = true;
      }
      if (demand[i] > 0.0) min_util = std::min(min_util, demand[i] * m.latency);
    }
    if (!single.valid()) return true;  // empty domain: no rule-1 assignment
    if (demand[i] <= 0.0) min_util = 0.0;
    total_fp += footprint[i];
    total_util += min_util;

    if (multiple) continue;
    // Forced assignment: every feasible binding puts `procs[i]` on `single`.
    const std::size_t u = single.index();
    if (forced_fp.size() < cs_.unit_count()) {
      forced_fp.resize(cs_.unit_count(), 0.0);
      forced_util.resize(cs_.unit_count(), 0.0);
    }
    forced_fp[u] += footprint[i];
    forced_util[u] += min_util;
    if (check_cap) {
      const double cap = cs_.unit_capacity(single);
      if (cap > 0.0 && forced_fp[u] > cap + kEps) return true;
    }
    if (check_util && forced_util[u] > so.utilization_bound + kEps) return true;
    if (so.exclusive_configurations && cs_.unit(single).is_cluster_unit()) {
      const AllocUnit& unit = cs_.unit(single);
      bool conflict = false;
      bool seen = false;
      for (const auto& [top, cluster] : forced_configs) {
        if (top != unit.top) continue;
        seen = true;
        conflict |= cluster != unit.cluster;
      }
      if (conflict) return true;  // two configs of one device both forced
      if (!seen) forced_configs.emplace_back(unit.top, unit.cluster);
    }
  }

  // Aggregate packing: every feasible binding places all footprints inside
  // the union of live units, whose per-unit loads respect cap + eps.
  if (check_cap) {
    double total_cap = 0.0;
    bool all_capped = true;
    live_union.for_each([&](std::size_t u) {
      const double cap = cs_.unit_capacity(AllocUnitId{u});
      if (cap <= 0.0) all_capped = false;  // an unlimited unit absorbs all
      total_cap += cap;
    });
    const double slack = static_cast<double>(live_union.count()) * kEps + kEps;
    if (all_capped && total_fp > total_cap + slack) return true;
  }
  // Aggregate utilization: per-unit load <= bound + eps over at most
  // |live_union| units.
  if (check_util) {
    const double ceiling = (so.utilization_bound + kEps) *
                               static_cast<double>(live_union.count()) +
                           kEps;
    if (total_util > ceiling) return true;
  }

  // Rule-3 closure: a dependence edge with no communicating live candidate
  // pair can never be bound.  kAnyPath is not analyzed (comm_possible and
  // the per-allocation variant below stay conservative).
  if (so.comm_model != CommModel::kAnyPath) {
    const auto can_comm = [&](AllocUnitId a, AllocUnitId b) {
      return so.comm_model == CommModel::kDirectOnly
                 ? cs_.tops_direct(a, b)
                 : cs_.comm_reachable(alloc, a, b);
    };
    for (const auto& [i, j] : edges) {
      bool satisfied = false;
      for (const CompiledMapping& a : cs_.mappings_of(procs[i])) {
        if (!live(a, i)) continue;
        for (const CompiledMapping& b : cs_.mappings_of(procs[j])) {
          if (!live(b, j)) continue;
          if (can_comm(a.unit, b.unit)) {
            satisfied = true;
            break;
          }
        }
        if (satisfied) break;
      }
      if (!satisfied) return true;
    }
  }
  return false;
}

bool SpecAnalysis::eca_infeasible(const AllocSet& alloc, const Eca& eca) const {
  const std::shared_ptr<const CompiledFlat> flat = cs_.flat(eca.selection);
  if (flat == nullptr) return false;  // cannot reason: leave it to the solver
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  edges.reserve(flat->graph.edges.size());
  for (const auto& [from, to] : flat->graph.edges) {
    const std::size_t i = flat->index_of[from.index()];
    const std::size_t j = flat->index_of[to.index()];
    if (i == CompiledFlat::npos || j == CompiledFlat::npos) continue;
    edges.emplace_back(i, j);
  }
  return relaxation_infeasible(alloc, flat->graph.vertices, flat->demand,
                               flat->footprint, edges);
}

bool SpecAnalysis::allocation_infeasible(const AllocSet& alloc) const {
  return relaxation_infeasible(alloc, mandatory_procs_, mandatory_demand_,
                               mandatory_footprint_, mandatory_edge_idx_);
}

void SpecAnalysis::collect_core(ClusterId cid, std::vector<NodeId>& procs,
                                std::vector<ClusterId>& visited) const {
  const HierarchicalGraph& p = cs_.problem();
  visited.push_back(cid);
  const Cluster& c = p.cluster(cid);
  for (NodeId nid : c.nodes) {
    const Node& n = p.node(nid);
    if (!n.is_interface()) {
      procs.push_back(nid);
    } else if (n.clusters.size() == 1) {
      // A single-alternative interface activates its only refinement in
      // every elementary activation.
      collect_core(n.clusters.front(), procs, visited);
    }
  }
}

void SpecAnalysis::compute_mandatory_core() {
  const HierarchicalGraph& p = cs_.problem();
  std::vector<ClusterId> visited;
  collect_core(p.root(), mandatory_procs_, visited);
  std::sort(mandatory_procs_.begin(), mandatory_procs_.end(),
            [](NodeId a, NodeId b) { return a.index() < b.index(); });

  std::vector<std::size_t> index_of(p.node_count(), CompiledFlat::npos);
  for (std::size_t i = 0; i < mandatory_procs_.size(); ++i)
    index_of[mandatory_procs_[i].index()] = i;
  for (ClusterId cid : visited) {
    for (EdgeId eid : p.cluster(cid).edges) {
      const Edge& e = p.edge(eid);
      const std::size_t i = index_of[e.from.index()];
      const std::size_t j = index_of[e.to.index()];
      if (i == CompiledFlat::npos || j == CompiledFlat::npos) continue;
      mandatory_edges_.emplace_back(e.from, e.to);
      mandatory_edge_idx_.emplace_back(i, j);
    }
  }

  mandatory_demand_.reserve(mandatory_procs_.size());
  mandatory_footprint_.reserve(mandatory_procs_.size());
  for (NodeId nid : mandatory_procs_) {
    mandatory_demand_.push_back(cs_.demand(nid));
    mandatory_footprint_.push_back(cs_.footprint(nid));
  }
}

bool SpecAnalysis::cluster_core_infeasible(ClusterId cluster) const {
  const HierarchicalGraph& p = cs_.problem();
  std::vector<NodeId> procs;
  std::vector<ClusterId> visited;
  collect_core(cluster, procs, visited);
  if (procs.empty()) return false;

  std::vector<std::size_t> index_of(p.node_count(), CompiledFlat::npos);
  for (std::size_t i = 0; i < procs.size(); ++i)
    index_of[procs[i].index()] = i;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (ClusterId cid : visited) {
    for (EdgeId eid : p.cluster(cid).edges) {
      const Edge& e = p.edge(eid);
      const std::size_t i = index_of[e.from.index()];
      const std::size_t j = index_of[e.to.index()];
      if (i == CompiledFlat::npos || j == CompiledFlat::npos) continue;
      edges.emplace_back(i, j);
    }
  }
  std::vector<double> demand;
  std::vector<double> footprint;
  demand.reserve(procs.size());
  footprint.reserve(procs.size());
  for (NodeId nid : procs) {
    demand.push_back(cs_.demand(nid));
    footprint.push_back(cs_.footprint(nid));
  }
  return relaxation_infeasible(full_alloc_, procs, demand, footprint, edges);
}

Json SpecAnalysis::to_json() const {
  const HierarchicalGraph& p = cs_.problem();
  JsonArray clusters;
  clusters.reserve(p.cluster_count());
  for (const Cluster& c : p.clusters()) {
    const ClusterBounds& b = bounds_[c.id.index()];
    JsonObject o;
    o.emplace_back("cluster", cluster_path(p, c.id));
    o.emplace_back("root", c.is_root());
    o.emplace_back("lo", bound_json(b.lo));
    o.emplace_back("hi", bound_json(b.hi));
    o.emplace_back("hi_cover", bound_json(b.hi_cover));
    o.emplace_back("reachable", b.reachable());
    if (b.reachable())
      o.emplace_back("witness",
                     cs_.spec().allocation_names(b.witness));
    clusters.emplace_back(std::move(o));
  }

  std::size_t comm_bad = 0;
  for (const Cluster& c : p.clusters()) {
    for (EdgeId eid : c.edges) {
      const Edge& e = p.edge(eid);
      if (p.node(e.from).is_interface() || p.node(e.to).is_interface())
        continue;
      if (!edge_comm_satisfiable(e.from, e.to)) ++comm_bad;
    }
  }

  JsonObject root;
  root.emplace_back("spec", cs_.spec().name());
  root.emplace_back("units", cs_.unit_count());
  root.emplace_back("clusters", std::move(clusters));
  root.emplace_back("front_provably_empty",
                    allocation_infeasible(full_alloc_));
  root.emplace_back("mandatory_processes", mandatory_procs_.size());
  root.emplace_back("comm_unsatisfiable_edges", comm_bad);
  return Json(std::move(root));
}

std::string SpecAnalysis::to_table() const {
  const HierarchicalGraph& p = cs_.problem();
  Table table({"cluster", "lo", "hi", "hi_cover", "reachable"});
  for (const Cluster& c : p.clusters()) {
    const ClusterBounds& b = bounds_[c.id.index()];
    table.add_row({cluster_path(p, c.id), bound_str(b.lo), bound_str(b.hi),
                   bound_str(b.hi_cover), b.reachable() ? "yes" : "no"});
  }
  return table.to_ascii();
}

}  // namespace sdf
