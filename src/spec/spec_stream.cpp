// Streaming specification reader.
//
// `SpecStreamBuilder` is a `JsonEventHandler` that recognizes the spec
// schema (spec_io.hpp) directly from the parse-event stream and mutates a
// `SpecificationGraph` as elements complete — no DOM is ever built.  It is
// the single schema reader: `spec_from_stream` drives it from a chunked
// `ByteReader`, `spec_from_string` feeds one chunk, and `spec_from_json`
// replays an existing DOM through it, so every entry point accepts exactly
// the same documents and produces identical graphs.
//
// Cross-references are resolved at the tightest scope that can satisfy
// them, preserving the resolution the DOM reader performed:
//  * edges resolve against their cluster's local node table when the
//    cluster closes (all sibling nodes exist by then),
//  * port mappings resolve when their graph closes (targets may live in
//    clusters declared after the port),
//  * mapping edges resolve when the document completes.
//
// Duplicate keys follow the DOM reader's first-occurrence-wins rule, and
// mistyped optional fields fall back exactly as `string_or`/`number_or`
// did (e.g. a numeric "kind" means "vertex", not an error).
#include <fstream>
#include <iostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spec/spec_io.hpp"
#include "util/strings.hpp"

namespace sdf {
namespace {

/// Parse-stack context: one entry per open container the schema reader
/// cares about, plus `kSkip` for subtrees it ignores.
enum class Ctx : std::uint8_t {
  kPreDoc,        // before the top-level '{'
  kDoc,           // top-level specification object
  kGraph,         // "problem" / "architecture" object
  kCluster,       // cluster object (root or refinement)
  kClusterNodes,  // a cluster's "nodes" array
  kClusterEdges,  // a cluster's "edges" array
  kNode,          // node object
  kNodeClusters,  // an interface's "clusters" array
  kNodePorts,     // an interface's "ports" array
  kPort,          // port object
  kPortMapping,   // a port's "mapping" object
  kEdge,          // edge object
  kAttrs,         // an "attrs" object (owner is the parent frame)
  kMappings,      // top-level "mappings" array
  kMapping,       // mapping-edge object
  kSkip,          // unknown / ignored subtree
};

/// An edge awaiting resolution at cluster close.
struct PendingEdge {
  std::string from, to, src_port, dst_port;
  bool seen_from = false, seen_to = false;
  bool seen_src = false, seen_dst = false, seen_attrs = false;
  std::vector<std::pair<std::string, double>> attrs;
};

/// A port-mapping entry awaiting resolution at graph close.
struct PendingPortMapping {
  PortId port;
  std::string cluster_name;
  std::string node_name;
};

/// A mapping edge awaiting resolution at document close.
struct PendingMapping {
  std::string process, resource;
  double latency = 0.0;
  bool seen_process = false, seen_resource = false, seen_latency = false;
};

struct Frame {
  Ctx ctx;
  /// Key of the object member whose value is being read (object frames).
  std::string key;
  /// First-occurrence-wins bookkeeping for the keys this frame consumes.
  bool seen_name = false, seen_kind = false, seen_attrs = false;
  bool seen_nodes = false, seen_edges = false, seen_clusters = false;
  bool seen_ports = false, seen_root = false, seen_direction = false;
  bool seen_mapping = false;

  // kNode / kCluster / kPort: identity collected before materialization.
  std::string name;
  std::string kind;          // node kind ("" = default "vertex")
  std::string direction;     // port direction ("" = default "in")
  bool materialized = false;
  NodeId node;               // kNode: the created node
  ClusterId cluster;         // kCluster: the created / root cluster
  /// Attrs seen before the owning entity existed (applied on creation).
  std::vector<std::pair<std::string, double>> attr_buf;

  // kCluster: local name table + deferred edges.
  std::unordered_map<std::string, NodeId> local;
  std::vector<PendingEdge> pending_edges;

  // kPort: deferred mapping entries (cluster name -> node name).
  std::vector<std::pair<std::string, std::string>> port_mapping;

  PendingEdge edge;        // kEdge
  PendingMapping mapping;  // kMapping
  int skip_depth = 0;      // kSkip
};

class SpecStreamBuilder final : public JsonEventHandler {
 public:
  SpecStreamBuilder() { frames_.push_back(Frame{.ctx = Ctx::kPreDoc}); }

  Status on_null() override { return scalar(ScalarKind::kOther, 0.0, {}); }
  Status on_bool(bool) override { return scalar(ScalarKind::kOther, 0.0, {}); }
  Status on_number(double value) override {
    return scalar(ScalarKind::kNumber, value, {});
  }
  Status on_string(std::string&& value) override {
    return scalar(ScalarKind::kString, 0.0, std::move(value));
  }

  Status on_key(std::string&& key) override {
    top().key = std::move(key);
    return Status::Ok();
  }

  Status on_begin_object() override { return begin_container(true); }
  Status on_begin_array() override { return begin_container(false); }
  Status on_end_object() override { return end_container(); }
  Status on_end_array() override { return end_container(); }

  /// Document-level resolution; call after the parser reports success.
  Status finalize(const SpecParseOptions& options) {
    if (!seen_doc_) return Error{"specification must be a JSON object"};
    if (!seen_problem_) return Error{"missing 'problem' graph"};
    if (!seen_architecture_) return Error{"missing 'architecture' graph"};
    for (const PendingMapping& m : mappings_) {
      const NodeId p = spec_.problem().find_node(m.process);
      const NodeId r = spec_.architecture().find_node(m.resource);
      if (!p.valid())
        return Error{"mapping references unknown process '" + m.process + "'"};
      if (!r.valid())
        return Error{"mapping references unknown resource '" + m.resource +
                     "'"};
      spec_.add_mapping(p, r, m.latency);
    }
    if (options.validate) {
      if (Status s = spec_.validate(); !s.ok()) return s;
    }
    return Status::Ok();
  }

  [[nodiscard]] SpecificationGraph take() { return std::move(spec_); }

 private:
  enum class ScalarKind { kString, kNumber, kOther };

  Frame& top() { return frames_.back(); }
  /// Frame `n` levels below the top (layout is fixed per context).
  Frame& below(std::size_t n) { return frames_[frames_.size() - 1 - n]; }

  /// Wraps `message` with the enclosing graph label, exactly as the DOM
  /// reader's callers did for everything inside "problem"/"architecture".
  Status err(const std::string& message) {
    if (graph_ != nullptr) return Error{message}.wrap(graph_label_);
    return Error{message};
  }

  void push(Frame frame) { frames_.push_back(std::move(frame)); }

  Status skip_subtree() {
    push(Frame{.ctx = Ctx::kSkip, .skip_depth = 1});
    return Status::Ok();
  }

  // ---- materialization ------------------------------------------------------

  /// Creates the node for a kNode frame once its identity is known.  The
  /// schema requires "name"/"kind" before "clusters"/"ports" in streaming
  /// input; the writer has always emitted them first.
  Status materialize_node(Frame& f) {
    if (f.materialized) return Status::Ok();
    if (f.name.empty()) return err("node without a name");
    const std::string kind = f.kind.empty() ? "vertex" : f.kind;
    // Layout: ... kCluster kClusterNodes kNode(top).
    Frame& cf = frames_[frames_.size() - 3];
    if (kind == "interface") {
      f.node = graph_->add_interface(cf.cluster, f.name);
    } else if (kind == "vertex") {
      f.node = graph_->add_vertex(cf.cluster, f.name);
    } else {
      return err("unknown node kind '" + kind + "'");
    }
    cf.local[f.name] = f.node;
    for (const auto& [k, v] : f.attr_buf) graph_->set_attr(f.node, k, v);
    f.attr_buf.clear();
    f.materialized = true;
    return Status::Ok();
  }

  /// Creates the cluster for a refinement kCluster frame.
  Status materialize_cluster(Frame& f) {
    if (f.materialized) return Status::Ok();
    if (f.name.empty()) return err("cluster without a name");
    // Layout: ... kNode kNodeClusters kCluster(top).
    Frame& iface = frames_[frames_.size() - 3];
    f.cluster = graph_->add_cluster(iface.node, f.name);
    for (const auto& [k, v] : f.attr_buf) graph_->set_attr(f.cluster, k, v);
    f.attr_buf.clear();
    f.materialized = true;
    return Status::Ok();
  }

  /// Resolves a cluster's deferred edges against its completed node table.
  Status resolve_edges(Frame& cf) {
    for (const PendingEdge& pe : cf.pending_edges) {
      const auto fi = cf.local.find(pe.from);
      const auto ti = cf.local.find(pe.to);
      if (fi == cf.local.end() || ti == cf.local.end())
        return err(strprintf(
            "edge '%s' -> '%s' references nodes outside its cluster",
            pe.from.c_str(), pe.to.c_str()));
      PortId sp, dp;
      if (!pe.src_port.empty()) {
        sp = graph_->find_port(fi->second, pe.src_port);
        if (!sp.valid()) return err("unknown src_port '" + pe.src_port + "'");
      }
      if (!pe.dst_port.empty()) {
        dp = graph_->find_port(ti->second, pe.dst_port);
        if (!dp.valid()) return err("unknown dst_port '" + pe.dst_port + "'");
      }
      const EdgeId eid = graph_->add_edge(fi->second, ti->second, sp, dp);
      for (const auto& [k, v] : pe.attrs) graph_->set_attr(eid, k, v);
    }
    return Status::Ok();
  }

  /// Resolves a graph's deferred port mappings once every cluster exists.
  Status resolve_port_mappings() {
    for (const PendingPortMapping& pm : port_mappings_) {
      const ClusterId cid = graph_->find_cluster(pm.cluster_name);
      const NodeId nid = graph_->find_node(pm.node_name);
      if (!cid.valid())
        return err("port mapping references unknown cluster '" +
                   pm.cluster_name + "'");
      if (!nid.valid())
        return err("port mapping references unknown node '" + pm.node_name +
                   "'");
      graph_->map_port(pm.port, cid, nid);
    }
    port_mappings_.clear();
    return Status::Ok();
  }

  // ---- event dispatch -------------------------------------------------------

  Status scalar(ScalarKind sk, double num, std::string&& str) {
    Frame& f = top();
    switch (f.ctx) {
      case Ctx::kPreDoc:
        return Error{"specification must be a JSON object"};

      case Ctx::kDoc:
        if (f.key == "name" && !f.seen_name) {
          f.seen_name = true;
          if (sk == ScalarKind::kString) spec_.set_name(std::move(str));
        } else if (f.key == "problem" && !seen_problem_) {
          seen_problem_ = true;
          return Error{"graph is missing its 'root' cluster"}.wrap(
              "problem graph");
        } else if (f.key == "architecture" && !seen_architecture_) {
          seen_architecture_ = true;
          return Error{"graph is missing its 'root' cluster"}.wrap(
              "architecture graph");
        } else if (f.key == "mappings" && !seen_mappings_) {
          seen_mappings_ = true;
          return Error{"'mappings' must be an array"};
        }
        return Status::Ok();

      case Ctx::kGraph:
        if (f.key == "root" && !f.seen_root) {
          f.seen_root = true;
          return err("graph is missing its 'root' cluster");
        }
        return Status::Ok();

      case Ctx::kCluster:
        if (f.key == "name" && !f.seen_name) {
          f.seen_name = true;
          // The root cluster keeps its name; refinement clusters take
          // theirs from the document.
          if (!f.materialized && sk == ScalarKind::kString)
            f.name = std::move(str);
        } else if (f.key == "attrs" && !f.seen_attrs) {
          f.seen_attrs = true;
          return err("'attrs' must be an object");
        } else if (f.key == "nodes" && !f.seen_nodes) {
          f.seen_nodes = true;
          return err("'nodes' must be an array");
        } else if (f.key == "edges" && !f.seen_edges) {
          f.seen_edges = true;
          return err("'edges' must be an array");
        }
        return Status::Ok();

      case Ctx::kClusterNodes:
        return err("node entries must be objects");

      case Ctx::kClusterEdges:
        // The DOM reader ran `string_or` against non-object entries and got
        // fallbacks — i.e. an edge with empty endpoint names.
        below(1).pending_edges.push_back(PendingEdge{});
        return Status::Ok();

      case Ctx::kNode:
        if (f.key == "name" && !f.seen_name) {
          f.seen_name = true;
          if (sk == ScalarKind::kString && !f.materialized)
            f.name = std::move(str);
        } else if (f.key == "kind" && !f.seen_kind) {
          f.seen_kind = true;
          if (sk == ScalarKind::kString && !f.materialized)
            f.kind = std::move(str);
        } else if (f.key == "attrs" && !f.seen_attrs) {
          f.seen_attrs = true;
          return err("'attrs' must be an object");
        } else if (f.key == "clusters" && !f.seen_clusters) {
          f.seen_clusters = true;
          if (Status s = materialize_node(f); !s.ok()) return s;
          if (graph_->node(f.node).is_interface())
            return err("'clusters' must be an array");
        } else if (f.key == "ports" && !f.seen_ports) {
          f.seen_ports = true;
          if (Status s = materialize_node(f); !s.ok()) return s;
          if (graph_->node(f.node).is_interface())
            return err("'ports' must be an array");
        }
        return Status::Ok();

      case Ctx::kNodeClusters:
        return err("cluster without a name");

      case Ctx::kNodePorts:
        return err("port without a name");

      case Ctx::kPort:
        if (f.key == "name" && !f.seen_name) {
          f.seen_name = true;
          if (sk == ScalarKind::kString) f.name = std::move(str);
        } else if (f.key == "direction" && !f.seen_direction) {
          f.seen_direction = true;
          if (sk == ScalarKind::kString) f.direction = std::move(str);
        } else if (f.key == "mapping" && !f.seen_mapping) {
          f.seen_mapping = true;
          return err("port 'mapping' must be an object");
        }
        return Status::Ok();

      case Ctx::kPortMapping:
        if (sk != ScalarKind::kString)
          return err("port mapping targets must be node names");
        below(1).port_mapping.emplace_back(f.key, std::move(str));
        return Status::Ok();

      case Ctx::kEdge: {
        auto take_name = [&](std::string& dst, bool& seen) {
          if (!seen) {
            seen = true;
            if (sk == ScalarKind::kString) dst = std::move(str);
          }
        };
        if (f.key == "from") take_name(f.edge.from, f.edge.seen_from);
        else if (f.key == "to") take_name(f.edge.to, f.edge.seen_to);
        else if (f.key == "src_port") take_name(f.edge.src_port, f.edge.seen_src);
        else if (f.key == "dst_port") take_name(f.edge.dst_port, f.edge.seen_dst);
        else if (f.key == "attrs" && !f.edge.seen_attrs) {
          f.edge.seen_attrs = true;
          return err("'attrs' must be an object");
        }
        return Status::Ok();
      }

      case Ctx::kAttrs:
        if (sk != ScalarKind::kNumber)
          return err("attribute '" + f.key + "' is not numeric");
        return apply_attr(f.key, num);

      case Ctx::kMappings:
        mappings_.push_back(PendingMapping{});
        return Status::Ok();

      case Ctx::kMapping:
        if (f.key == "process" && !f.mapping.seen_process) {
          f.mapping.seen_process = true;
          if (sk == ScalarKind::kString) f.mapping.process = std::move(str);
        } else if (f.key == "resource" && !f.mapping.seen_resource) {
          f.mapping.seen_resource = true;
          if (sk == ScalarKind::kString) f.mapping.resource = std::move(str);
        } else if (f.key == "latency" && !f.mapping.seen_latency) {
          f.mapping.seen_latency = true;
          if (sk == ScalarKind::kNumber) f.mapping.latency = num;
        }
        return Status::Ok();

      case Ctx::kSkip:
        return Status::Ok();
    }
    return Error{"spec reader: corrupt context"};  // unreachable
  }

  Status begin_container(bool is_object) {
    Frame& f = top();
    switch (f.ctx) {
      case Ctx::kPreDoc:
        if (!is_object) return Error{"specification must be a JSON object"};
        seen_doc_ = true;
        push(Frame{.ctx = Ctx::kDoc});
        return Status::Ok();

      case Ctx::kDoc:
        if ((f.key == "problem" && !seen_problem_) ||
            (f.key == "architecture" && !seen_architecture_)) {
          const bool is_problem = f.key == "problem";
          (is_problem ? seen_problem_ : seen_architecture_) = true;
          graph_label_ = is_problem ? "problem graph" : "architecture graph";
          if (!is_object)
            return Error{"graph is missing its 'root' cluster"}.wrap(
                graph_label_);
          graph_ = is_problem ? &spec_.problem() : &spec_.architecture();
          push(Frame{.ctx = Ctx::kGraph});
          return Status::Ok();
        }
        if (f.key == "mappings" && !seen_mappings_) {
          seen_mappings_ = true;
          if (is_object) return Error{"'mappings' must be an array"};
          push(Frame{.ctx = Ctx::kMappings});
          return Status::Ok();
        }
        if (f.key == "name" && !f.seen_name) f.seen_name = true;
        return skip_subtree();

      case Ctx::kGraph:
        if (f.key == "root" && !f.seen_root) {
          f.seen_root = true;
          if (!is_object) return err("graph is missing its 'root' cluster");
          Frame root{.ctx = Ctx::kCluster};
          root.materialized = true;
          root.cluster = graph_->root();
          push(std::move(root));
          return Status::Ok();
        }
        return skip_subtree();

      case Ctx::kCluster:
        if (f.key == "attrs" && !f.seen_attrs) {
          f.seen_attrs = true;
          if (!is_object) return err("'attrs' must be an object");
          if (Status s = materialize_cluster_if_entry(f); !s.ok()) return s;
          push(Frame{.ctx = Ctx::kAttrs});
          return Status::Ok();
        }
        if (f.key == "nodes" && !f.seen_nodes) {
          f.seen_nodes = true;
          if (is_object) return err("'nodes' must be an array");
          if (Status s = materialize_cluster_if_entry(f); !s.ok()) return s;
          push(Frame{.ctx = Ctx::kClusterNodes});
          return Status::Ok();
        }
        if (f.key == "edges" && !f.seen_edges) {
          f.seen_edges = true;
          if (is_object) return err("'edges' must be an array");
          if (Status s = materialize_cluster_if_entry(f); !s.ok()) return s;
          push(Frame{.ctx = Ctx::kClusterEdges});
          return Status::Ok();
        }
        if (f.key == "name" && !f.seen_name) f.seen_name = true;
        return skip_subtree();

      case Ctx::kClusterNodes:
        if (!is_object) return err("node entries must be objects");
        push(Frame{.ctx = Ctx::kNode});
        return Status::Ok();

      case Ctx::kClusterEdges:
        if (!is_object) {
          // Non-object entry: fallback semantics (empty endpoint names).
          below(1).pending_edges.push_back(PendingEdge{});
          return skip_subtree();
        }
        push(Frame{.ctx = Ctx::kEdge});
        return Status::Ok();

      case Ctx::kNode:
        if (f.key == "attrs" && !f.seen_attrs) {
          f.seen_attrs = true;
          if (!is_object) return err("'attrs' must be an object");
          push(Frame{.ctx = Ctx::kAttrs});
          return Status::Ok();
        }
        if (f.key == "clusters" && !f.seen_clusters) {
          f.seen_clusters = true;
          if (Status s = materialize_node(f); !s.ok()) return s;
          if (!graph_->node(f.node).is_interface()) return skip_subtree();
          if (is_object) return err("'clusters' must be an array");
          push(Frame{.ctx = Ctx::kNodeClusters});
          return Status::Ok();
        }
        if (f.key == "ports" && !f.seen_ports) {
          f.seen_ports = true;
          if (Status s = materialize_node(f); !s.ok()) return s;
          if (!graph_->node(f.node).is_interface()) return skip_subtree();
          if (is_object) return err("'ports' must be an array");
          push(Frame{.ctx = Ctx::kNodePorts});
          return Status::Ok();
        }
        if (f.key == "name" && !f.seen_name) f.seen_name = true;
        if (f.key == "kind" && !f.seen_kind) f.seen_kind = true;
        return skip_subtree();

      case Ctx::kNodeClusters:
        if (!is_object) return err("cluster without a name");
        push(Frame{.ctx = Ctx::kCluster});
        return Status::Ok();

      case Ctx::kNodePorts:
        if (!is_object) return err("port without a name");
        push(Frame{.ctx = Ctx::kPort});
        return Status::Ok();

      case Ctx::kPort:
        if (f.key == "mapping" && !f.seen_mapping) {
          f.seen_mapping = true;
          if (!is_object) return err("port 'mapping' must be an object");
          push(Frame{.ctx = Ctx::kPortMapping});
          return Status::Ok();
        }
        if (f.key == "name" && !f.seen_name) f.seen_name = true;
        if (f.key == "direction" && !f.seen_direction) f.seen_direction = true;
        return skip_subtree();

      case Ctx::kPortMapping:
        return err("port mapping targets must be node names");

      case Ctx::kEdge:
        if (f.key == "attrs" && !f.edge.seen_attrs) {
          f.edge.seen_attrs = true;
          if (!is_object) return err("'attrs' must be an object");
          push(Frame{.ctx = Ctx::kAttrs});
          return Status::Ok();
        }
        // Container values for from/to/... fall back to "" (string_or).
        return skip_subtree();

      case Ctx::kAttrs:
        return err("attribute '" + f.key + "' is not numeric");

      case Ctx::kMappings:
        if (!is_object) {
          mappings_.push_back(PendingMapping{});
          return skip_subtree();
        }
        push(Frame{.ctx = Ctx::kMapping});
        return Status::Ok();

      case Ctx::kMapping:
        return skip_subtree();

      case Ctx::kSkip:
        ++f.skip_depth;
        return Status::Ok();
    }
    return Error{"spec reader: corrupt context"};  // unreachable
  }

  Status end_container() {
    Frame& f = top();
    switch (f.ctx) {
      case Ctx::kSkip:
        if (--f.skip_depth == 0) frames_.pop_back();
        return Status::Ok();

      case Ctx::kDoc:
        frames_.pop_back();
        return Status::Ok();

      case Ctx::kGraph: {
        Status s = f.seen_root
                       ? resolve_port_mappings()
                       : err("graph is missing its 'root' cluster");
        graph_ = nullptr;
        graph_label_ = nullptr;
        frames_.pop_back();
        return s;
      }

      case Ctx::kCluster: {
        if (Status s = materialize_cluster_if_entry(f); !s.ok()) return s;
        if (Status s = resolve_edges(f); !s.ok()) return s;
        frames_.pop_back();
        return Status::Ok();
      }

      case Ctx::kNode: {
        if (Status s = materialize_node(f); !s.ok()) return s;
        frames_.pop_back();
        return Status::Ok();
      }

      case Ctx::kPort: {
        if (f.name.empty()) return err("port without a name");
        // Layout: ... kNode kNodePorts kPort(top).
        Frame& iface = frames_[frames_.size() - 3];
        const PortId pid = graph_->add_port(
            iface.node, f.name,
            f.direction == "out" ? PortDirection::kOut : PortDirection::kIn);
        for (auto& [cluster_name, node_name] : f.port_mapping)
          port_mappings_.push_back(
              PendingPortMapping{pid, std::move(cluster_name),
                                 std::move(node_name)});
        frames_.pop_back();
        return Status::Ok();
      }

      case Ctx::kEdge: {
        // Layout: ... kCluster kClusterEdges kEdge(top).
        Frame& cf = frames_[frames_.size() - 3];
        cf.pending_edges.push_back(std::move(f.edge));
        frames_.pop_back();
        return Status::Ok();
      }

      case Ctx::kMapping:
        mappings_.push_back(std::move(f.mapping));
        frames_.pop_back();
        return Status::Ok();

      case Ctx::kAttrs:
      case Ctx::kPortMapping:
      case Ctx::kClusterNodes:
      case Ctx::kClusterEdges:
      case Ctx::kNodeClusters:
      case Ctx::kNodePorts:
      case Ctx::kMappings:
        frames_.pop_back();
        return Status::Ok();

      case Ctx::kPreDoc:
        break;  // unreachable: the parser balances containers
    }
    return Error{"spec reader: corrupt context"};  // unreachable
  }

  /// Refinement clusters materialize lazily (their name must arrive before
  /// any content); the root cluster is pre-materialized.
  Status materialize_cluster_if_entry(Frame& f) {
    if (f.materialized) return Status::Ok();
    return materialize_cluster(f);
  }

  /// Routes a validated attrs entry to the entity owning the kAttrs frame.
  Status apply_attr(const std::string& key, double value) {
    Frame& owner = below(1);
    switch (owner.ctx) {
      case Ctx::kCluster:
        graph_->set_attr(owner.cluster, key, value);
        return Status::Ok();
      case Ctx::kNode:
        if (owner.materialized)
          graph_->set_attr(owner.node, key, value);
        else
          owner.attr_buf.emplace_back(key, value);
        return Status::Ok();
      case Ctx::kEdge:
        owner.edge.attrs.emplace_back(key, value);
        return Status::Ok();
      default:
        return Error{"spec reader: stray attrs context"};  // unreachable
    }
  }

  SpecificationGraph spec_{"G_S"};
  std::vector<Frame> frames_;
  HierarchicalGraph* graph_ = nullptr;   // inside "problem"/"architecture"
  const char* graph_label_ = nullptr;    // matching wrap() prefix
  std::vector<PendingPortMapping> port_mappings_;  // per-graph, cleared
  std::vector<PendingMapping> mappings_;
  bool seen_doc_ = false;
  bool seen_problem_ = false;
  bool seen_architecture_ = false;
  bool seen_mappings_ = false;
};

}  // namespace

Result<SpecificationGraph> spec_from_stream(ByteReader& in,
                                            const SpecParseOptions& options) {
  SpecStreamBuilder builder;
  JsonStreamParser parser(builder, options.limits);
  char buf[64 * 1024];
  while (true) {
    Result<std::size_t> n = in.read(buf, sizeof buf);
    if (!n.ok()) return n.error();
    if (n.value() == 0) break;
    if (Status s = parser.feed(std::string_view(buf, n.value())); !s.ok())
      return s.error();
  }
  if (Status s = parser.finish(); !s.ok()) return s.error();
  if (Status s = builder.finalize(options); !s.ok()) return s.error();
  return builder.take();
}

Result<SpecificationGraph> spec_from_string(std::string_view text,
                                            const SpecParseOptions& options) {
  StringViewByteReader reader(text);
  return spec_from_stream(reader, options);
}

Result<SpecificationGraph> spec_from_json(const Json& doc,
                                          const SpecParseOptions& options) {
  SpecStreamBuilder builder;
  if (Status s = replay_json_events(doc, builder); !s.ok()) return s.error();
  if (Status s = builder.finalize(options); !s.ok()) return s.error();
  return builder.take();
}

Result<SpecificationGraph> spec_from_file(const std::string& path,
                                          const SpecParseOptions& options) {
  if (path == "-") {
    IstreamByteReader reader(std::cin);
    Result<SpecificationGraph> spec = spec_from_stream(reader, options);
    if (!spec.ok()) return spec.error().wrap("<stdin>");
    return spec;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{"cannot open '" + path + "'"};
  IstreamByteReader reader(in);
  Result<SpecificationGraph> spec = spec_from_stream(reader, options);
  if (!spec.ok()) return spec.error().wrap(path);
  return spec;
}

}  // namespace sdf
