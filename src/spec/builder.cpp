#include "spec/builder.hpp"

#include "util/log.hpp"

namespace sdf {

SpecBuilder::SpecBuilder(std::string name) : spec_(std::move(name)) {}

ClusterId SpecBuilder::problem_cluster(ClusterId parent) const {
  return parent.valid() ? parent : spec_.problem().root();
}

NodeId SpecBuilder::process(std::string name, ClusterId parent) {
  return spec_.problem().add_vertex(problem_cluster(parent), std::move(name));
}

NodeId SpecBuilder::interface(std::string name, ClusterId parent) {
  return spec_.problem().add_interface(problem_cluster(parent),
                                       std::move(name));
}

ClusterId SpecBuilder::alternative(NodeId iface, std::string name) {
  return spec_.problem().add_cluster(iface, std::move(name));
}

EdgeId SpecBuilder::depends(NodeId from, NodeId to) {
  return spec_.problem().add_edge(from, to);
}

void SpecBuilder::timing(NodeId process, double period, double weight) {
  spec_.problem().set_attr(process, attr::kPeriod, period);
  spec_.problem().set_attr(process, attr::kTimingWeight, weight);
}

void SpecBuilder::negligible(NodeId process) {
  spec_.problem().set_attr(process, attr::kTimingWeight, 0.0);
}

NodeId SpecBuilder::resource(std::string name, double cost) {
  HierarchicalGraph& a = spec_.architecture();
  const NodeId id = a.add_vertex(a.root(), std::move(name));
  a.set_attr(id, attr::kCost, cost);
  return id;
}

NodeId SpecBuilder::bus(std::string name, double cost,
                        const std::vector<NodeId>& endpoints) {
  HierarchicalGraph& a = spec_.architecture();
  const NodeId id = a.add_vertex(a.root(), std::move(name));
  a.set_attr(id, attr::kCost, cost);
  a.set_attr(id, attr::kComm, 1.0);
  for (NodeId ep : endpoints) a.add_edge(id, ep);
  return id;
}

NodeId SpecBuilder::device(std::string name, double cost) {
  HierarchicalGraph& a = spec_.architecture();
  const NodeId id = a.add_interface(a.root(), std::move(name));
  a.set_attr(id, attr::kCost, cost);
  return id;
}

NodeId SpecBuilder::configuration(NodeId device, std::string name,
                                  double cost) {
  HierarchicalGraph& a = spec_.architecture();
  const ClusterId cfg = a.add_cluster(device, name);
  a.set_attr(cfg, attr::kCost, cost);
  return a.add_vertex(cfg, name + ".res");
}

void SpecBuilder::map(NodeId process, NodeId resource, double latency) {
  spec_.add_mapping(process, resource, latency);
}

SpecificationGraph SpecBuilder::build() {
  if (Status s = spec_.validate(); !s.ok()) {
    SDF_CHECK(false, s.error().message.c_str());
  }
  return std::move(spec_);
}

}  // namespace sdf
