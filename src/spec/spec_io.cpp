#include "spec/spec_io.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/strings.hpp"

namespace sdf {
namespace {

// ---- writing ----------------------------------------------------------------

Json attrs_to_json(const std::map<std::string, double, std::less<>>& attrs) {
  JsonObject obj;
  for (const auto& [k, v] : attrs) obj.emplace_back(k, Json(v));
  return Json(std::move(obj));
}

Result<Json> cluster_to_json(const HierarchicalGraph& g, ClusterId cid);

Result<Json> node_to_json(const HierarchicalGraph& g, NodeId nid) {
  const Node& n = g.node(nid);
  JsonObject obj;
  obj.emplace_back("name", Json(n.name));
  obj.emplace_back("kind",
                   Json(n.is_interface() ? "interface" : "vertex"));
  if (!n.attrs.empty()) obj.emplace_back("attrs", attrs_to_json(n.attrs));
  if (n.is_interface()) {
    JsonArray clusters;
    for (ClusterId cid : n.clusters) {
      Result<Json> c = cluster_to_json(g, cid);
      if (!c.ok()) return c;
      clusters.push_back(std::move(c).value());
    }
    obj.emplace_back("clusters", Json(std::move(clusters)));
    if (!n.ports.empty()) {
      JsonArray ports;
      for (PortId pid : n.ports) {
        const Port& p = g.port(pid);
        JsonObject pj;
        pj.emplace_back("name", Json(p.name));
        pj.emplace_back("direction",
                        Json(p.direction == PortDirection::kIn ? "in" : "out"));
        JsonObject mapping;
        for (const auto& [cid, target] : p.mapping)
          mapping.emplace_back(g.cluster(cid).name,
                               Json(g.node(target).name));
        if (!mapping.empty())
          pj.emplace_back("mapping", Json(std::move(mapping)));
        ports.push_back(Json(std::move(pj)));
      }
      obj.emplace_back("ports", Json(std::move(ports)));
    }
  }
  return Json(std::move(obj));
}

Result<Json> cluster_to_json(const HierarchicalGraph& g, ClusterId cid) {
  const Cluster& c = g.cluster(cid);
  JsonObject obj;
  obj.emplace_back("name", Json(c.name));
  if (!c.attrs.empty()) obj.emplace_back("attrs", attrs_to_json(c.attrs));
  JsonArray nodes;
  for (NodeId nid : c.nodes) {
    Result<Json> n = node_to_json(g, nid);
    if (!n.ok()) return n;
    nodes.push_back(std::move(n).value());
  }
  obj.emplace_back("nodes", Json(std::move(nodes)));
  JsonArray edges;
  for (EdgeId eid : c.edges) {
    const Edge& e = g.edge(eid);
    JsonObject ej;
    ej.emplace_back("from", Json(g.node(e.from).name));
    ej.emplace_back("to", Json(g.node(e.to).name));
    if (e.src_port.valid())
      ej.emplace_back("src_port", Json(g.port(e.src_port).name));
    if (e.dst_port.valid())
      ej.emplace_back("dst_port", Json(g.port(e.dst_port).name));
    if (!e.attrs.empty()) ej.emplace_back("attrs", attrs_to_json(e.attrs));
    edges.push_back(Json(std::move(ej)));
  }
  if (!edges.empty()) obj.emplace_back("edges", Json(std::move(edges)));
  return Json(std::move(obj));
}

Status check_unique_names(const HierarchicalGraph& g) {
  std::unordered_set<std::string> node_names, cluster_names;
  for (const Node& n : g.nodes())
    if (!node_names.insert(n.name).second)
      return Error{"duplicate node name '" + n.name + "' in graph '" +
                   g.name() + "'"};
  for (const Cluster& c : g.clusters())
    if (!c.is_root() && !cluster_names.insert(c.name).second)
      return Error{"duplicate cluster name '" + c.name + "' in graph '" +
                   g.name() + "'"};
  return Status::Ok();
}

Result<Json> graph_to_json(const HierarchicalGraph& g) {
  if (Status s = check_unique_names(g); !s.ok()) return s.error();
  Result<Json> root = cluster_to_json(g, g.root());
  if (!root.ok()) return root;
  JsonObject obj;
  obj.emplace_back("name", Json(g.name()));
  obj.emplace_back("root", std::move(root).value());
  return Json(std::move(obj));
}

// ---- reading ----------------------------------------------------------------

struct PendingPortMapping {
  PortId port;
  std::string cluster_name;
  std::string node_name;
};

class GraphReader {
 public:
  explicit GraphReader(HierarchicalGraph& g) : g_(g) {}

  Status read(const Json& doc) {
    const Json* root = doc.find("root");
    if (!root || !root->is_object())
      return Error{"graph is missing its 'root' cluster"};
    if (Status s = read_cluster_into(*root, g_.root()); !s.ok()) return s;
    // Resolve deferred port mappings (targets may be declared after ports).
    for (const PendingPortMapping& pm : pending_) {
      const ClusterId cid = g_.find_cluster(pm.cluster_name);
      const NodeId nid = g_.find_node(pm.node_name);
      if (!cid.valid())
        return Error{"port mapping references unknown cluster '" +
                     pm.cluster_name + "'"};
      if (!nid.valid())
        return Error{"port mapping references unknown node '" + pm.node_name +
                     "'"};
      g_.map_port(pm.port, cid, nid);
    }
    return Status::Ok();
  }

 private:
  Status read_attrs(const Json& obj, auto&& apply) {
    const Json* attrs = obj.find("attrs");
    if (!attrs) return Status::Ok();
    if (!attrs->is_object()) return Error{"'attrs' must be an object"};
    for (const auto& [k, v] : attrs->as_object()) {
      if (!v.is_number()) return Error{"attribute '" + k + "' is not numeric"};
      apply(k, v.as_number());
    }
    return Status::Ok();
  }

  Status read_cluster_into(const Json& cj, ClusterId cid) {
    if (Status s = read_attrs(
            cj, [&](const std::string& k, double v) { g_.set_attr(cid, k, v); });
        !s.ok())
      return s;

    std::unordered_map<std::string, NodeId> local;
    const Json* nodes = cj.find("nodes");
    if (nodes) {
      if (!nodes->is_array()) return Error{"'nodes' must be an array"};
      for (const Json& nj : nodes->as_array()) {
        if (!nj.is_object()) return Error{"node entries must be objects"};
        const std::string name = nj.string_or("name", "");
        if (name.empty()) return Error{"node without a name"};
        const std::string kind = nj.string_or("kind", "vertex");
        NodeId nid;
        if (kind == "interface") {
          nid = g_.add_interface(cid, name);
          if (Status s = read_interface_parts(nj, nid); !s.ok()) return s;
        } else if (kind == "vertex") {
          nid = g_.add_vertex(cid, name);
        } else {
          return Error{"unknown node kind '" + kind + "'"};
        }
        local[name] = nid;
        if (Status s = read_attrs(nj, [&](const std::string& k, double v) {
              g_.set_attr(nid, k, v);
            });
            !s.ok())
          return s;
      }
    }

    const Json* edges = cj.find("edges");
    if (edges) {
      if (!edges->is_array()) return Error{"'edges' must be an array"};
      for (const Json& ej : edges->as_array()) {
        const std::string from = ej.string_or("from", "");
        const std::string to = ej.string_or("to", "");
        const auto fi = local.find(from);
        const auto ti = local.find(to);
        if (fi == local.end() || ti == local.end())
          return Error{strprintf("edge '%s' -> '%s' references nodes outside "
                                 "its cluster",
                                 from.c_str(), to.c_str())};
        PortId sp, dp;
        if (const std::string n = ej.string_or("src_port", ""); !n.empty()) {
          sp = g_.find_port(fi->second, n);
          if (!sp.valid()) return Error{"unknown src_port '" + n + "'"};
        }
        if (const std::string n = ej.string_or("dst_port", ""); !n.empty()) {
          dp = g_.find_port(ti->second, n);
          if (!dp.valid()) return Error{"unknown dst_port '" + n + "'"};
        }
        const EdgeId eid = g_.add_edge(fi->second, ti->second, sp, dp);
        if (Status s = read_attrs(ej, [&](const std::string& k, double v) {
              g_.set_attr(eid, k, v);
            });
            !s.ok())
          return s;
      }
    }
    return Status::Ok();
  }

  Status read_interface_parts(const Json& nj, NodeId iface) {
    if (const Json* ports = nj.find("ports")) {
      if (!ports->is_array()) return Error{"'ports' must be an array"};
      for (const Json& pj : ports->as_array()) {
        const std::string pname = pj.string_or("name", "");
        if (pname.empty()) return Error{"port without a name"};
        const std::string dir = pj.string_or("direction", "in");
        const PortId pid = g_.add_port(
            iface, pname,
            dir == "out" ? PortDirection::kOut : PortDirection::kIn);
        if (const Json* mapping = pj.find("mapping")) {
          if (!mapping->is_object())
            return Error{"port 'mapping' must be an object"};
          for (const auto& [cluster_name, target] : mapping->as_object()) {
            if (!target.is_string())
              return Error{"port mapping targets must be node names"};
            pending_.push_back(
                PendingPortMapping{pid, cluster_name, target.as_string()});
          }
        }
      }
    }
    if (const Json* clusters = nj.find("clusters")) {
      if (!clusters->is_array()) return Error{"'clusters' must be an array"};
      for (const Json& cj : clusters->as_array()) {
        const std::string cname = cj.string_or("name", "");
        if (cname.empty()) return Error{"cluster without a name"};
        const ClusterId cid = g_.add_cluster(iface, cname);
        if (Status s = read_cluster_into(cj, cid); !s.ok()) return s;
      }
    }
    return Status::Ok();
  }

  HierarchicalGraph& g_;
  std::vector<PendingPortMapping> pending_;
};

}  // namespace

Result<Json> spec_to_json(const SpecificationGraph& spec) {
  Result<Json> problem = graph_to_json(spec.problem());
  if (!problem.ok()) return problem.error().wrap("problem graph");
  Result<Json> architecture = graph_to_json(spec.architecture());
  if (!architecture.ok()) return architecture.error().wrap("architecture graph");

  JsonArray mappings;
  for (const MappingEdge& m : spec.mappings()) {
    JsonObject mj;
    mj.emplace_back("process", Json(spec.problem().node(m.process).name));
    mj.emplace_back("resource",
                    Json(spec.architecture().node(m.resource).name));
    mj.emplace_back("latency", Json(m.latency));
    mappings.push_back(Json(std::move(mj)));
  }

  JsonObject doc;
  doc.emplace_back("name", Json(spec.name()));
  doc.emplace_back("problem", std::move(problem).value());
  doc.emplace_back("architecture", std::move(architecture).value());
  doc.emplace_back("mappings", Json(std::move(mappings)));
  return Json(std::move(doc));
}

Result<std::string> spec_to_string(const SpecificationGraph& spec) {
  Result<Json> doc = spec_to_json(spec);
  if (!doc.ok()) return doc.error();
  return doc.value().dump(2);
}

Result<SpecificationGraph> spec_from_json(const Json& doc,
                                          const SpecParseOptions& options) {
  if (!doc.is_object()) return Error{"specification must be a JSON object"};
  SpecificationGraph spec(doc.string_or("name", "G_S"));

  const Json* problem = doc.find("problem");
  if (!problem) return Error{"missing 'problem' graph"};
  if (Status s = GraphReader(spec.problem()).read(*problem); !s.ok())
    return s.error().wrap("problem graph");

  const Json* architecture = doc.find("architecture");
  if (!architecture) return Error{"missing 'architecture' graph"};
  if (Status s = GraphReader(spec.architecture()).read(*architecture); !s.ok())
    return s.error().wrap("architecture graph");

  if (const Json* mappings = doc.find("mappings")) {
    if (!mappings->is_array()) return Error{"'mappings' must be an array"};
    for (const Json& mj : mappings->as_array()) {
      const std::string pname = mj.string_or("process", "");
      const std::string rname = mj.string_or("resource", "");
      const NodeId p = spec.problem().find_node(pname);
      const NodeId r = spec.architecture().find_node(rname);
      if (!p.valid())
        return Error{"mapping references unknown process '" + pname + "'"};
      if (!r.valid())
        return Error{"mapping references unknown resource '" + rname + "'"};
      spec.add_mapping(p, r, mj.number_or("latency", 0.0));
    }
  }

  if (options.validate) {
    if (Status s = spec.validate(); !s.ok()) return s.error();
  }
  return spec;
}

Result<SpecificationGraph> spec_from_string(std::string_view text,
                                            const SpecParseOptions& options) {
  Result<Json> doc = Json::parse(text);
  if (!doc.ok()) return doc.error();
  return spec_from_json(doc.value(), options);
}

}  // namespace sdf
