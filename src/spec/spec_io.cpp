#include "spec/spec_io.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/strings.hpp"

namespace sdf {
namespace {

// ---- writing ----------------------------------------------------------------

Json attrs_to_json(const std::map<std::string, double, std::less<>>& attrs) {
  JsonObject obj;
  for (const auto& [k, v] : attrs) obj.emplace_back(k, Json(v));
  return Json(std::move(obj));
}

Result<Json> cluster_to_json(const HierarchicalGraph& g, ClusterId cid);

Result<Json> node_to_json(const HierarchicalGraph& g, NodeId nid) {
  const Node& n = g.node(nid);
  JsonObject obj;
  obj.emplace_back("name", Json(n.name));
  obj.emplace_back("kind",
                   Json(n.is_interface() ? "interface" : "vertex"));
  if (!n.attrs.empty()) obj.emplace_back("attrs", attrs_to_json(n.attrs));
  if (n.is_interface()) {
    JsonArray clusters;
    for (ClusterId cid : n.clusters) {
      Result<Json> c = cluster_to_json(g, cid);
      if (!c.ok()) return c;
      clusters.push_back(std::move(c).value());
    }
    obj.emplace_back("clusters", Json(std::move(clusters)));
    if (!n.ports.empty()) {
      JsonArray ports;
      for (PortId pid : n.ports) {
        const Port& p = g.port(pid);
        JsonObject pj;
        pj.emplace_back("name", Json(p.name));
        pj.emplace_back("direction",
                        Json(p.direction == PortDirection::kIn ? "in" : "out"));
        JsonObject mapping;
        for (const auto& [cid, target] : p.mapping)
          mapping.emplace_back(g.cluster(cid).name,
                               Json(g.node(target).name));
        if (!mapping.empty())
          pj.emplace_back("mapping", Json(std::move(mapping)));
        ports.push_back(Json(std::move(pj)));
      }
      obj.emplace_back("ports", Json(std::move(ports)));
    }
  }
  return Json(std::move(obj));
}

Result<Json> cluster_to_json(const HierarchicalGraph& g, ClusterId cid) {
  const Cluster& c = g.cluster(cid);
  JsonObject obj;
  obj.emplace_back("name", Json(c.name));
  if (!c.attrs.empty()) obj.emplace_back("attrs", attrs_to_json(c.attrs));
  JsonArray nodes;
  for (NodeId nid : c.nodes) {
    Result<Json> n = node_to_json(g, nid);
    if (!n.ok()) return n;
    nodes.push_back(std::move(n).value());
  }
  obj.emplace_back("nodes", Json(std::move(nodes)));
  JsonArray edges;
  for (EdgeId eid : c.edges) {
    const Edge& e = g.edge(eid);
    JsonObject ej;
    ej.emplace_back("from", Json(g.node(e.from).name));
    ej.emplace_back("to", Json(g.node(e.to).name));
    if (e.src_port.valid())
      ej.emplace_back("src_port", Json(g.port(e.src_port).name));
    if (e.dst_port.valid())
      ej.emplace_back("dst_port", Json(g.port(e.dst_port).name));
    if (!e.attrs.empty()) ej.emplace_back("attrs", attrs_to_json(e.attrs));
    edges.push_back(Json(std::move(ej)));
  }
  if (!edges.empty()) obj.emplace_back("edges", Json(std::move(edges)));
  return Json(std::move(obj));
}

Status check_unique_names(const HierarchicalGraph& g) {
  std::unordered_set<std::string> node_names, cluster_names;
  for (const Node& n : g.nodes())
    if (!node_names.insert(n.name).second)
      return Error{"duplicate node name '" + n.name + "' in graph '" +
                   g.name() + "'"};
  for (const Cluster& c : g.clusters())
    if (!c.is_root() && !cluster_names.insert(c.name).second)
      return Error{"duplicate cluster name '" + c.name + "' in graph '" +
                   g.name() + "'"};
  return Status::Ok();
}

Result<Json> graph_to_json(const HierarchicalGraph& g) {
  if (Status s = check_unique_names(g); !s.ok()) return s.error();
  Result<Json> root = cluster_to_json(g, g.root());
  if (!root.ok()) return root;
  JsonObject obj;
  obj.emplace_back("name", Json(g.name()));
  obj.emplace_back("root", std::move(root).value());
  return Json(std::move(obj));
}

}  // namespace

Result<Json> spec_to_json(const SpecificationGraph& spec) {
  Result<Json> problem = graph_to_json(spec.problem());
  if (!problem.ok()) return problem.error().wrap("problem graph");
  Result<Json> architecture = graph_to_json(spec.architecture());
  if (!architecture.ok()) return architecture.error().wrap("architecture graph");

  JsonArray mappings;
  for (const MappingEdge& m : spec.mappings()) {
    JsonObject mj;
    mj.emplace_back("process", Json(spec.problem().node(m.process).name));
    mj.emplace_back("resource",
                    Json(spec.architecture().node(m.resource).name));
    mj.emplace_back("latency", Json(m.latency));
    mappings.push_back(Json(std::move(mj)));
  }

  JsonObject doc;
  doc.emplace_back("name", Json(spec.name()));
  doc.emplace_back("problem", std::move(problem).value());
  doc.emplace_back("architecture", std::move(architecture).value());
  doc.emplace_back("mappings", Json(std::move(mappings)));
  return Json(std::move(doc));
}

Result<std::string> spec_to_string(const SpecificationGraph& spec) {
  Result<Json> doc = spec_to_json(spec);
  if (!doc.ok()) return doc.error();
  return doc.value().dump(2);
}

// spec_from_json / spec_from_string / spec_from_stream / spec_from_file
// live in spec_stream.cpp: all four share the streaming schema reader.

}  // namespace sdf
