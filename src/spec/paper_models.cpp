#include "spec/paper_models.hpp"

#include "spec/builder.hpp"

namespace sdf::models {

SpecificationGraph make_tv_decoder_spec() {
  SpecBuilder b("tv_decoder");

  // ---- problem graph (Fig. 1) ----
  const NodeId pa = b.process("Pa");
  const NodeId pc = b.process("Pc");
  const NodeId id = b.interface("ID");
  const NodeId iu = b.interface("IU");
  b.depends(id, iu);
  b.negligible(pa);
  b.negligible(pc);

  const ClusterId gd1 = b.alternative(id, "gD1");
  const ClusterId gd2 = b.alternative(id, "gD2");
  const ClusterId gd3 = b.alternative(id, "gD3");
  const NodeId pd1 = b.process("Pd1", gd1);
  const NodeId pd2 = b.process("Pd2", gd2);
  const NodeId pd3 = b.process("Pd3", gd3);

  const ClusterId gu1 = b.alternative(iu, "gU1");
  const ClusterId gu2 = b.alternative(iu, "gU2");
  const NodeId pu1 = b.process("Pu1", gu1);
  const NodeId pu2 = b.process("Pu2", gu2);

  // Decoder output rate: uncompression (and the decryption feeding it) must
  // sustain a 300ns period.
  for (NodeId p : {pd1, pd2, pd3, pu1, pu2}) b.timing(p, 300.0);

  // ---- architecture graph (Fig. 2) ----
  const NodeId up = b.resource("uP", 50.0);
  const NodeId asic = b.resource("A", 80.0);
  const NodeId fpga = b.device("FPGA", 0.0);
  const NodeId d3c = b.configuration(fpga, "D3", 30.0);
  const NodeId u1c = b.configuration(fpga, "U1", 20.0);
  const NodeId u2c = b.configuration(fpga, "U2", 25.0);
  b.bus("C1", 5.0, {up, fpga});
  b.bus("C2", 5.0, {up, asic});

  // ---- mapping edges (latencies in ns; Fig. 2 annotates P_U^1 with 40 on
  // uP and 15 on A, the rest is chosen consistently) ----
  b.map(pa, up, 20.0);
  b.map(pc, up, 5.0);
  b.map(pd1, up, 30.0);
  b.map(pd1, asic, 20.0);
  b.map(pd2, asic, 25.0);
  b.map(pd3, d3c, 15.0);
  b.map(pu1, up, 40.0);
  b.map(pu1, asic, 15.0);
  b.map(pu1, u1c, 20.0);
  b.map(pu2, asic, 30.0);
  b.map(pu2, u2c, 18.0);

  return b.build();
}

SpecificationGraph make_settop_spec() {
  SpecBuilder b("settop_box");

  // ---- problem graph (Fig. 3): one top-level application interface with
  // three alternative applications ----
  const NodeId iapp = b.interface("IApp");

  // Internet browser: PcI -> Pp -> Pf, no timing constraints.
  const ClusterId g_i = b.alternative(iapp, "gI");
  const NodeId pci = b.process("PcI", g_i);
  const NodeId pp = b.process("Pp", g_i);
  const NodeId pf = b.process("Pf", g_i);
  b.depends(pci, pp);
  b.depends(pp, pf);

  // Game console: PcG -> IG -> Pd, output period 240ns.
  const ClusterId g_g = b.alternative(iapp, "gG");
  const NodeId pcg = b.process("PcG", g_g);
  const NodeId ig = b.interface("IG", g_g);
  const NodeId pd = b.process("Pd", g_g);
  b.depends(pcg, ig);
  b.depends(ig, pd);
  b.negligible(pcg);
  b.timing(pd, 240.0);
  const ClusterId g_g1 = b.alternative(ig, "gG1");
  const ClusterId g_g2 = b.alternative(ig, "gG2");
  const ClusterId g_g3 = b.alternative(ig, "gG3");
  const NodeId pg1 = b.process("Pg1", g_g1);
  const NodeId pg2 = b.process("Pg2", g_g2);
  const NodeId pg3 = b.process("Pg3", g_g3);
  for (NodeId p : {pg1, pg2, pg3}) b.timing(p, 240.0);

  // Digital TV decoder: Pa, PcD, ID -> IU, output period 300ns.  The
  // authentication runs once at start-up and the controller accounts for
  // ~0.01% of calls (§5), so both are negligible for utilization.
  const ClusterId g_d = b.alternative(iapp, "gD");
  const NodeId pa = b.process("Pa", g_d);
  const NodeId pcd = b.process("PcD", g_d);
  const NodeId idf = b.interface("ID", g_d);
  const NodeId iu = b.interface("IU", g_d);
  b.depends(idf, iu);
  b.negligible(pa);
  b.negligible(pcd);
  const ClusterId g_d1 = b.alternative(idf, "gD1");
  const ClusterId g_d2 = b.alternative(idf, "gD2");
  const ClusterId g_d3 = b.alternative(idf, "gD3");
  const NodeId pd1 = b.process("Pd1", g_d1);
  const NodeId pd2 = b.process("Pd2", g_d2);
  const NodeId pd3 = b.process("Pd3", g_d3);
  const ClusterId g_u1 = b.alternative(iu, "gU1");
  const ClusterId g_u2 = b.alternative(iu, "gU2");
  const NodeId pu1 = b.process("Pu1", g_u1);
  const NodeId pu2 = b.process("Pu2", g_u2);
  for (NodeId p : {pd1, pd2, pd3, pu1, pu2}) b.timing(p, 300.0);

  // ---- architecture graph (Fig. 5) ----
  // Costs: uP1/uP2 and the front-determining sums are fixed by §5 (see
  // paper_models.hpp); the remaining values are calibrated.
  const NodeId up1 = b.resource("uP1", 120.0);
  const NodeId up2 = b.resource("uP2", 100.0);
  const NodeId a1 = b.resource("A1", 250.0);
  const NodeId a2 = b.resource("A2", 260.0);
  const NodeId a3 = b.resource("A3", 270.0);
  const NodeId fpga = b.device("FPGA", 0.0);
  b.bus("C1", 10.0, {up2, fpga});
  b.bus("C2", 10.0, {up2, a1});
  b.bus("C3", 15.0, {up2, a2});
  b.bus("C4", 15.0, {up2, a3});
  b.bus("C5", 55.0, {up1, fpga});
  const NodeId g1c = b.configuration(fpga, "G1", 60.0);
  const NodeId u2c = b.configuration(fpga, "U2", 60.0);
  const NodeId d3c = b.configuration(fpga, "D3", 60.0);

  // ---- mapping edges: Table 1 verbatim (core execution times in ns) ----
  b.map(pci, up1, 10.0);
  b.map(pci, up2, 12.0);
  b.map(pp, up1, 15.0);
  b.map(pp, up2, 19.0);
  b.map(pf, up1, 50.0);
  b.map(pf, up2, 75.0);
  b.map(pcg, up1, 25.0);
  b.map(pcg, up2, 27.0);
  b.map(pg1, up1, 75.0);
  b.map(pg1, up2, 95.0);
  b.map(pg1, a1, 15.0);
  b.map(pg1, a2, 15.0);
  b.map(pg1, a3, 15.0);
  b.map(pg1, g1c, 20.0);
  b.map(pg2, a1, 25.0);
  b.map(pg2, a2, 22.0);
  b.map(pg2, a3, 22.0);
  b.map(pg3, a1, 50.0);
  b.map(pg3, a2, 45.0);
  b.map(pg3, a3, 35.0);
  b.map(pd, up1, 70.0);
  b.map(pd, up2, 90.0);
  b.map(pd, a1, 30.0);
  b.map(pd, a2, 30.0);
  b.map(pd, a3, 25.0);
  b.map(pcd, up1, 10.0);
  b.map(pcd, up2, 10.0);
  b.map(pa, up1, 55.0);
  b.map(pa, up2, 60.0);
  b.map(pd1, up1, 85.0);
  b.map(pd1, up2, 95.0);
  b.map(pd1, a1, 25.0);
  b.map(pd1, a2, 22.0);
  b.map(pd1, a3, 22.0);
  b.map(pd2, a1, 35.0);
  b.map(pd2, a2, 33.0);
  b.map(pd2, a3, 32.0);
  b.map(pd3, d3c, 63.0);
  b.map(pu1, up1, 40.0);
  b.map(pu1, up2, 45.0);
  b.map(pu1, a1, 15.0);
  b.map(pu1, a2, 12.0);
  b.map(pu1, a3, 10.0);
  b.map(pu2, a1, 29.0);
  b.map(pu2, a2, 27.0);
  b.map(pu2, a3, 22.0);
  b.map(pu2, u2c, 59.0);

  return b.build();
}

const std::vector<SettopParetoRow>& settop_expected_front() {
  static const std::vector<SettopParetoRow> rows = {
      {"uP2", "gI, gD1, gU1", 100.0, 2.0},
      {"uP1", "gI, gG1, gD1, gU1", 120.0, 3.0},
      {"uP2, C1, G1, U2", "gI, gG1, gD1, gU1, gU2", 230.0, 4.0},
      {"uP2, C1, G1, U2, D3", "gI, gG1, gD1, gD3, gU1, gU2", 290.0, 5.0},
      {"uP2, A1, C2", "gI, gG1, gG2, gG3, gD1, gD2, gU1, gU2", 360.0, 7.0},
      {"uP2, A1, C1, C2, D3", "gI, gG1, gG2, gG3, gD1, gD2, gD3, gU1, gU2",
       430.0, 8.0},
  };
  return rows;
}

}  // namespace sdf::models
