#include "spec/specification.hpp"

#include <algorithm>

#include "graph/validate.hpp"
#include "util/strings.hpp"

namespace sdf {

void SpecificationGraph::add_mapping(NodeId process, NodeId resource,
                                     double latency) {
  SDF_CHECK(process.valid() && process.index() < problem_.node_count(),
            "bad problem NodeId");
  SDF_CHECK(resource.valid() && resource.index() < architecture_.node_count(),
            "bad architecture NodeId");
  // Interface endpoints are *data* errors (spec files can express them);
  // they are recorded as given and reported by validate()/lint as SDF010
  // instead of aborting the load.
  mappings_.push_back(MappingEdge{process, resource, latency});
}

std::vector<MappingEdge> SpecificationGraph::mappings_of(
    NodeId process) const {
  std::vector<MappingEdge> out;
  for (const MappingEdge& m : mappings_)
    if (m.process == process) out.push_back(m);
  return out;
}

NodeId SpecificationGraph::top_node_of(NodeId arch_node) const {
  // Walk up: node -> owning cluster -> owning interface -> ... until the
  // owning cluster is the root.
  NodeId cur = arch_node;
  while (true) {
    const Cluster& c = architecture_.cluster(architecture_.node(cur).parent);
    if (c.is_root()) return cur;
    cur = c.parent;
  }
}

void SpecificationGraph::build_units() const {
  units_.clear();
  resource_to_unit_.assign(architecture_.node_count(), AllocUnitId{});

  auto push_unit = [&](AllocUnit u) {
    u.id = AllocUnitId{units_.size()};
    units_.push_back(std::move(u));
    return units_.back().id;
  };

  // Top-level vertices first, arena order.
  for (NodeId nid : architecture_.cluster(architecture_.root()).nodes) {
    const Node& n = architecture_.node(nid);
    if (n.is_interface()) continue;
    AllocUnit u;
    u.name = n.name;
    u.vertex = nid;
    u.cost = architecture_.attr_or(nid, attr::kCost, 0.0);
    u.is_comm = architecture_.attr_or(nid, attr::kComm, 0.0) != 0.0;
    u.top = nid;
    const AllocUnitId id = push_unit(std::move(u));
    resource_to_unit_[nid.index()] = id;
  }

  // Refinement clusters, arena order; every leaf in a cluster's subtree
  // resolves to that cluster's unit (innermost clusters are created later in
  // the arena, so later assignments below would overwrite — we therefore map
  // leaves to their *outermost* refinement cluster, matching the paper's
  // "whole clusters" granularity).
  for (const Cluster& c : architecture_.clusters()) {
    if (c.is_root()) continue;
    // Only clusters whose parent interface sits at the top level (outermost
    // refinements) become units.
    const Node& owner = architecture_.node(c.parent);
    if (!architecture_.cluster(owner.parent).is_root()) continue;
    AllocUnit u;
    u.name = c.name;
    u.cluster = c.id;
    u.cost = architecture_.attr_or(c.id, attr::kCost, 0.0);
    u.is_comm = false;
    u.top = c.parent;
    const AllocUnitId id = push_unit(std::move(u));
    for (NodeId leaf : architecture_.leaves(c.id))
      resource_to_unit_[leaf.index()] = id;
  }

  units_built_clusters_ = architecture_.cluster_count();
  units_dirty_ = false;
}

const std::vector<AllocUnit>& SpecificationGraph::alloc_units() const {
  if (units_dirty_ ||
      resource_to_unit_.size() != architecture_.node_count() ||
      units_built_clusters_ != architecture_.cluster_count())
    build_units();
  return units_;
}

void SpecificationGraph::invalidate_units() const { units_dirty_ = true; }

AllocUnitId SpecificationGraph::find_unit(std::string_view name) const {
  for (const AllocUnit& u : alloc_units())
    if (u.name == name) return u.id;
  return AllocUnitId{};
}

AllocUnitId SpecificationGraph::unit_of_resource(NodeId resource) const {
  alloc_units();
  SDF_CHECK(resource.valid() && resource.index() < resource_to_unit_.size(),
            "bad architecture node id");
  return resource_to_unit_[resource.index()];
}

double SpecificationGraph::allocation_cost(const AllocSet& alloc) const {
  const auto& units = alloc_units();
  double cost = 0.0;
  DynBitset charged_ifaces(architecture_.node_count());
  alloc.for_each([&](std::size_t i) {
    const AllocUnit& u = units[i];
    cost += u.cost;
    if (u.is_cluster_unit() && !charged_ifaces.test(u.top.index())) {
      charged_ifaces.set(u.top.index());
      cost += architecture_.attr_or(u.top, attr::kCost, 0.0);
    }
  });
  return cost;
}

std::string SpecificationGraph::allocation_names(const AllocSet& alloc) const {
  const auto& units = alloc_units();
  std::vector<std::string> names;
  alloc.for_each([&](std::size_t i) { names.push_back(units[i].name); });
  return join(names, ", ");
}

bool SpecificationGraph::comm_reachable(const AllocSet& alloc, AllocUnitId a,
                                        AllocUnitId b) const {
  const auto& units = alloc_units();
  const NodeId top_a = units[a.index()].top;
  const NodeId top_b = units[b.index()].top;
  if (top_a == top_b) return true;

  // Direct architecture edge between the two tops (either direction)?
  auto direct = [&](NodeId x, NodeId y) {
    for (EdgeId eid : architecture_.node(x).out_edges)
      if (architecture_.edge(eid).to == y) return true;
    for (EdgeId eid : architecture_.node(x).in_edges)
      if (architecture_.edge(eid).from == y) return true;
    return false;
  };
  if (direct(top_a, top_b)) return true;

  // Allocated communication unit adjacent to both tops?
  bool found = false;
  alloc.for_each([&](std::size_t i) {
    if (found) return;
    const AllocUnit& c = units[i];
    if (!c.is_comm) return;
    if (direct(c.top, top_a) && direct(c.top, top_b)) found = true;
  });
  return found;
}

std::vector<AllocUnitId> SpecificationGraph::reachable_units(
    NodeId process) const {
  std::vector<AllocUnitId> out;
  for (const MappingEdge& m : mappings_) {
    if (m.process != process) continue;
    const AllocUnitId u = unit_of_resource(m.resource);
    if (u.valid() && std::find(out.begin(), out.end(), u) == out.end())
      out.push_back(u);
  }
  return out;
}

Status SpecificationGraph::validate() const {
  if (Status s = validate_or_error(problem_); !s.ok())
    return s.error().wrap("problem graph");
  if (Status s = validate_or_error(architecture_); !s.ok())
    return s.error().wrap("architecture graph");

  // Mapping edges must link problem leaves to architecture leaves.
  for (const MappingEdge& m : mappings_) {
    if (problem_.node(m.process).is_interface())
      return Error{"mapping edge from non-leaf problem node '" +
                   problem_.node(m.process).name + "'"};
    if (architecture_.node(m.resource).is_interface())
      return Error{"mapping edge to non-leaf architecture node '" +
                   architecture_.node(m.resource).name + "'"};
    if (m.latency < 0)
      return Error{"negative latency on mapping edge from '" +
                   problem_.node(m.process).name + "'"};
  }
  return Status::Ok();
}

}  // namespace sdf
