#include "spec/specification.hpp"

#include <algorithm>

#include "graph/validate.hpp"
#include "spec/compiled.hpp"
#include "util/strings.hpp"

namespace sdf {

SpecificationGraph::SpecificationGraph()
    : problem_("G_P"), architecture_("G_A") {}

SpecificationGraph::SpecificationGraph(std::string name)
    : name_(std::move(name)), problem_("G_P"), architecture_("G_A") {}

SpecificationGraph::~SpecificationGraph() = default;

SpecificationGraph::SpecificationGraph(const SpecificationGraph& other)
    : name_(other.name_),
      problem_(other.problem_),
      architecture_(other.architecture_),
      mappings_(other.mappings_) {}

SpecificationGraph& SpecificationGraph::operator=(
    const SpecificationGraph& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  problem_ = other.problem_;
  architecture_ = other.architecture_;
  mappings_ = other.mappings_;
  units_dirty_ = true;
  compiled_.reset();
  return *this;
}

SpecificationGraph::SpecificationGraph(SpecificationGraph&& other) noexcept
    : name_(std::move(other.name_)),
      problem_(std::move(other.problem_)),
      architecture_(std::move(other.architecture_)),
      mappings_(std::move(other.mappings_)) {
  // The moved-from spec's caches would reference the data now owned here.
  other.units_dirty_ = true;
  other.compiled_.reset();
}

SpecificationGraph& SpecificationGraph::operator=(
    SpecificationGraph&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  problem_ = std::move(other.problem_);
  architecture_ = std::move(other.architecture_);
  mappings_ = std::move(other.mappings_);
  units_dirty_ = true;
  compiled_.reset();
  other.units_dirty_ = true;
  other.compiled_.reset();
  return *this;
}

const CompiledSpec& SpecificationGraph::compiled() const {
  const std::lock_guard<std::mutex> lock(compiled_mutex_);
  if (compiled_ == nullptr ||
      compiled_problem_version_ != problem_.version() ||
      compiled_architecture_version_ != architecture_.version() ||
      compiled_mapping_count_ != mappings_.size()) {
    // An architecture edit may have changed unit costs/flags without going
    // through a spec-level mutator; rebuild the unit universe too so the
    // index never snapshots a stale cache.
    invalidate_units();
    compiled_ = std::make_unique<CompiledSpec>(*this);
    compiled_problem_version_ = problem_.version();
    compiled_architecture_version_ = architecture_.version();
    compiled_mapping_count_ = mappings_.size();
  }
  return *compiled_;
}

void SpecificationGraph::add_mapping(NodeId process, NodeId resource,
                                     double latency) {
  SDF_CHECK(process.valid() && process.index() < problem_.node_count(),
            "bad problem NodeId");
  SDF_CHECK(resource.valid() && resource.index() < architecture_.node_count(),
            "bad architecture NodeId");
  // Interface endpoints are *data* errors (spec files can express them);
  // they are recorded as given and reported by validate()/lint as SDF010
  // instead of aborting the load.
  mappings_.push_back(MappingEdge{process, resource, latency});
}

std::vector<MappingEdge> SpecificationGraph::mappings_of(
    NodeId process) const {
  const std::span<const CompiledMapping> span = compiled().mappings_of(process);
  std::vector<MappingEdge> out;
  out.reserve(span.size());
  for (const CompiledMapping& m : span)
    out.push_back(MappingEdge{process, m.resource, m.latency});
  return out;
}

NodeId SpecificationGraph::top_node_of(NodeId arch_node) const {
  // Walk up: node -> owning cluster -> owning interface -> ... until the
  // owning cluster is the root.
  NodeId cur = arch_node;
  while (true) {
    const Cluster& c = architecture_.cluster(architecture_.node(cur).parent);
    if (c.is_root()) return cur;
    cur = c.parent;
  }
}

void SpecificationGraph::build_units() const {
  units_.clear();
  resource_to_unit_.assign(architecture_.node_count(), AllocUnitId{});

  auto push_unit = [&](AllocUnit u) {
    u.id = AllocUnitId{units_.size()};
    units_.push_back(std::move(u));
    return units_.back().id;
  };

  // Top-level vertices first, arena order.
  for (NodeId nid : architecture_.cluster(architecture_.root()).nodes) {
    const Node& n = architecture_.node(nid);
    if (n.is_interface()) continue;
    AllocUnit u;
    u.name = n.name;
    u.vertex = nid;
    u.cost = architecture_.attr_or(nid, attr::kCost, 0.0);
    u.is_comm = architecture_.attr_or(nid, attr::kComm, 0.0) != 0.0;
    u.top = nid;
    const AllocUnitId id = push_unit(std::move(u));
    resource_to_unit_[nid.index()] = id;
  }

  // Refinement clusters, arena order; every leaf in a cluster's subtree
  // resolves to that cluster's unit (innermost clusters are created later in
  // the arena, so later assignments below would overwrite — we therefore map
  // leaves to their *outermost* refinement cluster, matching the paper's
  // "whole clusters" granularity).
  for (const Cluster& c : architecture_.clusters()) {
    if (c.is_root()) continue;
    // Only clusters whose parent interface sits at the top level (outermost
    // refinements) become units.
    const Node& owner = architecture_.node(c.parent);
    if (!architecture_.cluster(owner.parent).is_root()) continue;
    AllocUnit u;
    u.name = c.name;
    u.cluster = c.id;
    u.cost = architecture_.attr_or(c.id, attr::kCost, 0.0);
    u.is_comm = false;
    u.top = c.parent;
    const AllocUnitId id = push_unit(std::move(u));
    for (NodeId leaf : architecture_.leaves(c.id))
      resource_to_unit_[leaf.index()] = id;
  }

  units_built_clusters_ = architecture_.cluster_count();
  units_dirty_ = false;
}

const std::vector<AllocUnit>& SpecificationGraph::alloc_units() const {
  if (units_dirty_ ||
      resource_to_unit_.size() != architecture_.node_count() ||
      units_built_clusters_ != architecture_.cluster_count())
    build_units();
  return units_;
}

void SpecificationGraph::invalidate_units() const { units_dirty_ = true; }

AllocUnitId SpecificationGraph::find_unit(std::string_view name) const {
  for (const AllocUnit& u : alloc_units())
    if (u.name == name) return u.id;
  return AllocUnitId{};
}

AllocUnitId SpecificationGraph::unit_of_resource(NodeId resource) const {
  (void)alloc_units();  // ensure resource_to_unit_ is built
  SDF_CHECK(resource.valid() && resource.index() < resource_to_unit_.size(),
            "bad architecture node id");
  return resource_to_unit_[resource.index()];
}

double SpecificationGraph::allocation_cost(const AllocSet& alloc) const {
  return compiled().allocation_cost(alloc);
}

std::string SpecificationGraph::allocation_names(const AllocSet& alloc) const {
  const auto& units = alloc_units();
  std::vector<std::string> names;
  alloc.for_each([&](std::size_t i) { names.push_back(units[i].name); });
  return join(names, ", ");
}

bool SpecificationGraph::comm_reachable(const AllocSet& alloc, AllocUnitId a,
                                        AllocUnitId b) const {
  return compiled().comm_reachable(alloc, a, b);
}

std::vector<AllocUnitId> SpecificationGraph::reachable_units(
    NodeId process) const {
  const std::span<const AllocUnitId> span =
      compiled().reachable_unit_list(process);
  return {span.begin(), span.end()};
}

Status SpecificationGraph::validate() const {
  if (Status s = validate_or_error(problem_); !s.ok())
    return s.error().wrap("problem graph");
  if (Status s = validate_or_error(architecture_); !s.ok())
    return s.error().wrap("architecture graph");

  // Mapping edges must link problem leaves to architecture leaves.
  for (const MappingEdge& m : mappings_) {
    if (problem_.node(m.process).is_interface())
      return Error{"mapping edge from non-leaf problem node '" +
                   problem_.node(m.process).name + "'"};
    if (architecture_.node(m.resource).is_interface())
      return Error{"mapping edge to non-leaf architecture node '" +
                   architecture_.node(m.resource).name + "'"};
    if (m.latency < 0)
      return Error{"negative latency on mapping edge from '" +
                   problem_.node(m.process).name + "'"};
  }
  return Status::Ok();
}

}  // namespace sdf
