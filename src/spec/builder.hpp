// Fluent construction of specification graphs.
//
// `SpecBuilder` wraps the raw `HierarchicalGraph` API with the vocabulary of
// the paper: processes, interfaces and alternative refinements on the
// problem side; resources, buses and reconfigurable-device configurations on
// the architecture side; mapping edges with latencies between them.
#pragma once

#include <string>
#include <vector>

#include "spec/specification.hpp"

namespace sdf {

class SpecBuilder {
 public:
  explicit SpecBuilder(std::string name = "G_S");

  // ---- problem graph -------------------------------------------------------

  /// Adds a process (leaf) to `parent` (default: top level).
  NodeId process(std::string name, ClusterId parent = ClusterId{});
  /// Adds an interface (hierarchical vertex) to `parent`.
  NodeId interface(std::string name, ClusterId parent = ClusterId{});
  /// Adds an alternative refinement of `iface`.
  ClusterId alternative(NodeId iface, std::string name);
  /// Adds a dependence edge between two problem nodes of the same cluster.
  EdgeId depends(NodeId from, NodeId to);
  /// Annotates a process with a minimal activation period and its
  /// utilization weight (attr::kPeriod / attr::kTimingWeight).
  void timing(NodeId process, double period, double weight = 1.0);
  /// Marks a process as negligible for the utilization estimate.
  void negligible(NodeId process);

  // ---- architecture graph --------------------------------------------------

  /// Adds a functional resource (processor, ASIC) with an allocation cost.
  NodeId resource(std::string name, double cost);
  /// Adds a communication resource (bus) with a cost, wired to `endpoints`.
  NodeId bus(std::string name, double cost,
             const std::vector<NodeId>& endpoints);
  /// Adds a reconfigurable device (architecture interface), e.g. an FPGA.
  NodeId device(std::string name, double cost = 0.0);
  /// Adds a configuration (refinement cluster) of `device` containing a
  /// single resource leaf of the same name; returns that leaf.  The
  /// configuration cluster carries the allocation cost.
  NodeId configuration(NodeId device, std::string name, double cost);

  // ---- mapping -------------------------------------------------------------

  /// Adds a mapping edge process -> resource with a latency.
  void map(NodeId process, NodeId resource, double latency);

  /// Validates and returns the finished specification.  Aborts the build on
  /// structural errors (programming mistakes, not data errors).
  SpecificationGraph build();

  /// Access to the specification under construction.
  [[nodiscard]] SpecificationGraph& spec() { return spec_; }

 private:
  [[nodiscard]] ClusterId problem_cluster(ClusterId parent) const;

  SpecificationGraph spec_;
};

}  // namespace sdf
