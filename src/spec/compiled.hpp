// Compiled query index over a specification graph.
//
// Every engine that walks the design space — EXPLORE's activatability
// filter, the branch bound, the binding solver, the lint rules — asks the
// same spec-level questions thousands of times: which units can a process
// map to, can two units communicate under an allocation, what does this
// cluster selection flatten to.  Answering them from the raw
// `SpecificationGraph` re-scans the mapping-edge list and re-flattens the
// hierarchy per call.
//
// `CompiledSpec` answers them from an immutable, arena-style index built in
// one pass:
//   * mapping edges grouped per process in CSR layout (`mappings_of` is a
//     zero-allocation span, insertion order preserved),
//   * per-process reachable-unit bitsets (activatability is one bitset
//     intersection) plus the first-seen-order unit lists,
//   * per-unit candidate-process lists (CSR),
//   * dense per-process attribute arrays (period, timing weight, footprint,
//     timing demand) replacing per-call `attr_or` map lookups,
//   * per-unit top/comm adjacency bitsets making `comm_reachable` a
//     three-way word-wise intersection with no allocation, and
//   * a memoized flatten cache keyed by cluster selection, each entry
//     carrying the solver-ready dense index/adjacency/attribute arrays.
//
// All queries except `flat()` touch only immutable state and are safe to
// call concurrently; `flat()` is internally synchronized.  Obtain an
// instance via `SpecificationGraph::compiled()` (lazily built, invalidated
// by mutation) or build one directly for full control of its lifetime.
// The index holds references into the owning `SpecificationGraph`; mutating
// the spec invalidates a directly-constructed index.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/flatten.hpp"
#include "spec/specification.hpp"
#include "util/dyn_bitset.hpp"

namespace sdf {

/// One mapping edge as the index stores it: the raw edge plus the resolved
/// allocatable unit (invalid when the resource is not owned by any unit,
/// e.g. a defective mapping onto an interface).
struct CompiledMapping {
  NodeId resource;
  AllocUnitId unit;
  double latency = 0.0;
};

/// One memoized flattening: the flat graph plus the dense arrays the
/// binding solver needs, built once per distinct cluster selection.
struct CompiledFlat {
  FlatGraph graph;
  /// Position of each problem node in `graph.vertices`; `npos` when the
  /// node is not an active leaf of this flattening.
  std::vector<std::size_t> index_of;
  /// Undirected adjacency between vertex positions (both directions of
  /// every flat dependence edge).
  std::vector<std::vector<std::size_t>> adj;
  /// Timing demand (timing_weight / period; 0 = unconstrained) and
  /// footprint per vertex position.
  std::vector<double> demand;
  std::vector<double> footprint;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

class CompiledSpec {
 public:
  /// Builds the full index; `spec` must outlive the instance and stay
  /// unmodified while it is in use.
  explicit CompiledSpec(const SpecificationGraph& spec);

  CompiledSpec(const CompiledSpec&) = delete;
  CompiledSpec& operator=(const CompiledSpec&) = delete;

  [[nodiscard]] const SpecificationGraph& spec() const { return spec_; }
  [[nodiscard]] const HierarchicalGraph& problem() const {
    return spec_.problem();
  }
  [[nodiscard]] const HierarchicalGraph& architecture() const {
    return spec_.architecture();
  }

  // ---- units ----------------------------------------------------------------

  [[nodiscard]] const std::vector<AllocUnit>& units() const { return units_; }
  [[nodiscard]] std::size_t unit_count() const { return units_.size(); }
  [[nodiscard]] const AllocUnit& unit(AllocUnitId id) const {
    return units_[id.index()];
  }
  [[nodiscard]] AllocSet make_alloc_set() const {
    return AllocSet(units_.size());
  }
  /// The unit owning architecture leaf `resource`; invalid when none does.
  [[nodiscard]] AllocUnitId unit_of_resource(NodeId resource) const {
    return resource_to_unit_[resource.index()];
  }
  /// kCapacity of the unit's vertex or configuration cluster; 0 = unlimited.
  [[nodiscard]] double unit_capacity(AllocUnitId id) const {
    return unit_capacity_[id.index()];
  }
  /// All unit capacities, indexed by unit.
  [[nodiscard]] const std::vector<double>& unit_capacities() const {
    return unit_capacity_;
  }
  /// Units at least one process has a mapping edge into.
  [[nodiscard]] const DynBitset& mappable_units() const {
    return mappable_units_;
  }
  /// Distinct top-level architecture nodes adjacent to the unit's top by
  /// architecture edges; populated for communication units only (the §5
  /// dominance filter inspects no other adjacency).
  [[nodiscard]] const std::vector<NodeId>& comm_neighbor_tops(
      AllocUnitId id) const {
    return comm_neighbor_tops_[id.index()];
  }

  /// Allocation cost, bit-identical to the shim: unit costs in ascending
  /// unit order plus, once per architecture interface with an allocated
  /// configuration, the interface's own cost.
  [[nodiscard]] double allocation_cost(const AllocSet& alloc) const;

  // ---- mapping edges --------------------------------------------------------

  [[nodiscard]] std::size_t process_count() const {
    return spec_.problem().node_count();
  }
  /// Mapping edges of `process`, insertion order.  Zero-allocation.
  [[nodiscard]] std::span<const CompiledMapping> mappings_of(
      NodeId process) const {
    const std::size_t i = process.index();
    return {map_entries_.data() + map_offsets_[i],
            map_offsets_[i + 1] - map_offsets_[i]};
  }
  /// Units `process` can map to, as a bitset over the unit universe.
  [[nodiscard]] const DynBitset& reachable_units(NodeId process) const {
    return reach_bits_[process.index()];
  }
  /// Same set as a first-seen-order list (the shim's historical order).
  [[nodiscard]] std::span<const AllocUnitId> reachable_unit_list(
      NodeId process) const {
    const std::size_t i = process.index();
    return {reach_list_.data() + reach_offsets_[i],
            reach_offsets_[i + 1] - reach_offsets_[i]};
  }
  /// Processes with at least one mapping edge into `unit`, ascending id,
  /// deduplicated.
  [[nodiscard]] std::span<const NodeId> processes_on(AllocUnitId unit) const {
    const std::size_t i = unit.index();
    return {unit_procs_.data() + unit_proc_offsets_[i],
            unit_proc_offsets_[i + 1] - unit_proc_offsets_[i]};
  }

  // ---- per-process attributes (dense) ---------------------------------------

  [[nodiscard]] double period(NodeId process) const {
    return period_[process.index()];
  }
  [[nodiscard]] double timing_weight(NodeId process) const {
    return weight_[process.index()];
  }
  [[nodiscard]] double footprint(NodeId process) const {
    return footprint_[process.index()];
  }
  /// timing_weight / period when both are positive, else 0 (the solver's
  /// "unconstrained" marker).
  [[nodiscard]] double demand(NodeId process) const {
    return demand_[process.index()];
  }

  // ---- communication --------------------------------------------------------

  /// True iff the tops of `a` and `b` coincide or share a direct
  /// architecture edge (either direction).
  [[nodiscard]] bool tops_direct(AllocUnitId a, AllocUnitId b) const {
    return tops_direct_[a.index()].test(b.index());
  }
  /// One-hop-bus reachability under `alloc` (the default `CommModel`):
  /// direct, or some allocated communication unit adjacent to both tops.
  [[nodiscard]] bool comm_reachable(const AllocSet& alloc, AllocUnitId a,
                                    AllocUnitId b) const {
    if (tops_direct_[a.index()].test(b.index())) return true;
    return DynBitset::intersects(alloc, comm_adj_[a.index()],
                                 comm_adj_[b.index()]);
  }

  // ---- flatten cache --------------------------------------------------------

  /// The memoized flattening of the problem graph under `selection`;
  /// nullptr when the selection does not flatten (e.g. an unselected
  /// reached interface).  The returned pointer stays valid for the life of
  /// this index.  Thread-safe.
  [[nodiscard]] const CompiledFlat* flat(
      const ClusterSelection& selection) const;

 private:
  using FlatKey = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

  const SpecificationGraph& spec_;

  // Units (copied so the index is self-contained).
  std::vector<AllocUnit> units_;
  std::vector<AllocUnitId> resource_to_unit_;  // by architecture NodeId
  std::vector<double> unit_capacity_;          // by unit
  DynBitset mappable_units_;
  std::vector<std::vector<NodeId>> comm_neighbor_tops_;  // by unit

  // Allocation-cost inputs: interface cost charged once per allocated
  // configuration; `unit_iface_slot_` maps cluster units to a dense slot.
  std::vector<std::size_t> unit_iface_slot_;  // by unit; npos for vertex units
  std::vector<double> iface_cost_;            // by slot
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Mapping edges, CSR by process.
  std::vector<std::size_t> map_offsets_;     // node_count + 1
  std::vector<CompiledMapping> map_entries_;

  // Reachable units per process.
  std::vector<DynBitset> reach_bits_;        // by problem NodeId
  std::vector<std::size_t> reach_offsets_;   // node_count + 1
  std::vector<AllocUnitId> reach_list_;

  // Candidate processes per unit, CSR.
  std::vector<std::size_t> unit_proc_offsets_;  // unit_count + 1
  std::vector<NodeId> unit_procs_;

  // Dense per-process attributes.
  std::vector<double> period_, weight_, footprint_, demand_;

  // Per-unit communication bitsets over the unit universe.
  std::vector<DynBitset> tops_direct_;  // same top or direct edge
  std::vector<DynBitset> comm_adj_;     // comm units adjacent to my top

  // Flatten cache; nullptr entries memoize failed flattenings.
  mutable std::mutex flat_mutex_;
  mutable std::map<FlatKey, std::unique_ptr<CompiledFlat>> flat_cache_;
};

}  // namespace sdf
