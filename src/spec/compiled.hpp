// Compiled query index over a specification graph.
//
// Every engine that walks the design space — EXPLORE's activatability
// filter, the branch bound, the binding solver, the lint rules — asks the
// same spec-level questions thousands of times: which units can a process
// map to, can two units communicate under an allocation, what does this
// cluster selection flatten to.  Answering them from the raw
// `SpecificationGraph` re-scans the mapping-edge list and re-flattens the
// hierarchy per call.
//
// `CompiledSpec` answers them from an immutable, arena-style index built in
// one pass:
//   * mapping edges grouped per process in CSR layout (`mappings_of` is a
//     zero-allocation span, insertion order preserved),
//   * per-process reachable-unit bitsets (activatability is one bitset
//     intersection) plus the first-seen-order unit lists,
//   * per-unit candidate-process lists (CSR),
//   * dense per-process attribute arrays (period, timing weight, footprint,
//     timing demand) replacing per-call `attr_or` map lookups,
//   * per-unit top/comm adjacency bitsets making `comm_reachable` a
//     three-way word-wise intersection with no allocation,
//   * a memoized flatten cache keyed by cluster selection, each entry
//     carrying the solver-ready dense index/adjacency/attribute arrays,
//     bounded by an LRU entry/byte budget, and
//   * a per-cluster decomposition sub-index (`decomposition()`): the static
//     partition of each cluster's interior into independently bindable
//     groups, which the hierarchical solve path combines at interfaces
//     instead of flattening (see bind/bind_cache.hpp, `HierCache`).
//
// All queries except `flat()` touch only immutable state and are safe to
// call concurrently; `flat()` is internally synchronized.  Obtain an
// instance via `SpecificationGraph::compiled()` (lazily built, invalidated
// by mutation) or build one directly for full control of its lifetime.
// The index holds references into the owning `SpecificationGraph`; mutating
// the spec invalidates a directly-constructed index.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/flatten.hpp"
#include "spec/specification.hpp"
#include "util/dyn_bitset.hpp"

namespace sdf {

/// One mapping edge as the index stores it: the raw edge plus the resolved
/// allocatable unit (invalid when the resource is not owned by any unit,
/// e.g. a defective mapping onto an interface).
struct CompiledMapping {
  NodeId resource;
  AllocUnitId unit;
  double latency = 0.0;
};

/// One memoized flattening: the flat graph plus the dense arrays the
/// binding solver needs, built once per distinct cluster selection.
struct CompiledFlat {
  FlatGraph graph;
  /// Position of each problem node in `graph.vertices`; `npos` when the
  /// node is not an active leaf of this flattening.
  std::vector<std::size_t> index_of;
  /// Undirected adjacency between vertex positions (both directions of
  /// every flat dependence edge).
  std::vector<std::vector<std::size_t>> adj;
  /// Timing demand (timing_weight / period; 0 = unconstrained) and
  /// footprint per vertex position.
  std::vector<double> demand;
  std::vector<double> footprint;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// One group of a cluster's static decomposition: a connected component of
/// the cluster's direct nodes under the coupling relation "shares a
/// dependence edge, a mappable unit, or a reconfigurable device (in any
/// alternative)".  No solver constraint — mapping domains, communication
/// along dependence edges, exclusive configurations, utilization or
/// capacity sums — can span two groups of the same cluster, so each group's
/// binding sub-problem is solvable independently and the verdicts combine
/// by conjunction.
struct ClusterGroup {
  /// Direct nodes of the owning cluster in this group, ascending id.
  std::vector<NodeId> items;
  /// Every problem node that can appear under these items in *any*
  /// selection: the items plus all descendants of all alternatives.
  DynBitset subtree_nodes;
  /// Interfaces among `subtree_nodes`; a cluster selection restricted to
  /// these fully determines the group's flat sub-problem.
  DynBitset subtree_interfaces;
  /// Units some process under the group can map to (union over all
  /// alternatives) — the group's share of the allocation.
  DynBitset subtree_units;
  /// True iff the group is exactly one interface item (then necessarily
  /// with no incident edges): the hierarchical solver recurses into the
  /// selected refinement instead of solving the group flat.
  bool single_interface = false;
  /// Canonical digest of the group's static port signature: item kinds and,
  /// for interfaces, port counts/directions/mapping arities.  Folded into
  /// the hierarchical cache key next to the cluster id and the restricted
  /// selection.
  std::uint64_t signature = 0;
};

/// Per-cluster decomposition, built once at index-construction time.
struct ClusterDecomposition {
  std::vector<ClusterGroup> groups;
  /// True when solving this cluster hierarchically can beat the flat
  /// kernel: more than one group, or a lone single-interface group with a
  /// decomposable alternative somewhere below it.
  bool useful = false;
};

class CompiledSpec {
 public:
  /// Builds the full index; `spec` must outlive the instance and stay
  /// unmodified while it is in use.
  explicit CompiledSpec(const SpecificationGraph& spec);

  CompiledSpec(const CompiledSpec&) = delete;
  CompiledSpec& operator=(const CompiledSpec&) = delete;

  [[nodiscard]] const SpecificationGraph& spec() const { return spec_; }
  [[nodiscard]] const HierarchicalGraph& problem() const {
    return spec_.problem();
  }
  [[nodiscard]] const HierarchicalGraph& architecture() const {
    return spec_.architecture();
  }

  // ---- units ----------------------------------------------------------------

  [[nodiscard]] const std::vector<AllocUnit>& units() const { return units_; }
  [[nodiscard]] std::size_t unit_count() const { return units_.size(); }
  [[nodiscard]] const AllocUnit& unit(AllocUnitId id) const {
    return units_[id.index()];
  }
  [[nodiscard]] AllocSet make_alloc_set() const {
    return AllocSet(units_.size());
  }
  /// The unit owning architecture leaf `resource`; invalid when none does.
  [[nodiscard]] AllocUnitId unit_of_resource(NodeId resource) const {
    return resource_to_unit_[resource.index()];
  }
  /// kCapacity of the unit's vertex or configuration cluster; 0 = unlimited.
  [[nodiscard]] double unit_capacity(AllocUnitId id) const {
    return unit_capacity_[id.index()];
  }
  /// All unit capacities, indexed by unit.
  [[nodiscard]] const std::vector<double>& unit_capacities() const {
    return unit_capacity_;
  }
  /// Units at least one process has a mapping edge into.
  [[nodiscard]] const DynBitset& mappable_units() const {
    return mappable_units_;
  }
  /// Distinct top-level architecture nodes adjacent to the unit's top by
  /// architecture edges; populated for communication units only (the §5
  /// dominance filter inspects no other adjacency).
  [[nodiscard]] const std::vector<NodeId>& comm_neighbor_tops(
      AllocUnitId id) const {
    return comm_neighbor_tops_[id.index()];
  }

  /// Allocation cost, bit-identical to the shim: unit costs in ascending
  /// unit order plus, once per architecture interface with an allocated
  /// configuration, the interface's own cost.
  [[nodiscard]] double allocation_cost(const AllocSet& alloc) const;

  // ---- mapping edges --------------------------------------------------------

  [[nodiscard]] std::size_t process_count() const {
    return spec_.problem().node_count();
  }
  /// Mapping edges of `process`, insertion order.  Zero-allocation.
  [[nodiscard]] std::span<const CompiledMapping> mappings_of(
      NodeId process) const {
    const std::size_t i = process.index();
    return {map_entries_.data() + map_offsets_[i],
            map_offsets_[i + 1] - map_offsets_[i]};
  }
  /// Units `process` can map to, as a bitset over the unit universe.
  [[nodiscard]] const DynBitset& reachable_units(NodeId process) const {
    return reach_bits_[process.index()];
  }
  /// Same set as a first-seen-order list (the shim's historical order).
  [[nodiscard]] std::span<const AllocUnitId> reachable_unit_list(
      NodeId process) const {
    const std::size_t i = process.index();
    return {reach_list_.data() + reach_offsets_[i],
            reach_offsets_[i + 1] - reach_offsets_[i]};
  }
  /// Processes with at least one mapping edge into `unit`, ascending id,
  /// deduplicated.
  [[nodiscard]] std::span<const NodeId> processes_on(AllocUnitId unit) const {
    const std::size_t i = unit.index();
    return {unit_procs_.data() + unit_proc_offsets_[i],
            unit_proc_offsets_[i + 1] - unit_proc_offsets_[i]};
  }

  // ---- per-process attributes (dense) ---------------------------------------

  [[nodiscard]] double period(NodeId process) const {
    return period_[process.index()];
  }
  [[nodiscard]] double timing_weight(NodeId process) const {
    return weight_[process.index()];
  }
  [[nodiscard]] double footprint(NodeId process) const {
    return footprint_[process.index()];
  }
  /// timing_weight / period when both are positive, else 0 (the solver's
  /// "unconstrained" marker).
  [[nodiscard]] double demand(NodeId process) const {
    return demand_[process.index()];
  }

  // ---- communication --------------------------------------------------------

  /// True iff the tops of `a` and `b` coincide or share a direct
  /// architecture edge (either direction).
  [[nodiscard]] bool tops_direct(AllocUnitId a, AllocUnitId b) const {
    return tops_direct_[a.index()].test(b.index());
  }
  /// One-hop-bus reachability under `alloc` (the default `CommModel`):
  /// direct, or some allocated communication unit adjacent to both tops.
  [[nodiscard]] bool comm_reachable(const AllocSet& alloc, AllocUnitId a,
                                    AllocUnitId b) const {
    if (tops_direct_[a.index()].test(b.index())) return true;
    return DynBitset::intersects(alloc, comm_adj_[a.index()],
                                 comm_adj_[b.index()]);
  }

  // ---- flatten cache --------------------------------------------------------

  /// The memoized flattening of the problem graph under `selection`;
  /// nullptr when the selection does not flatten (e.g. an unselected
  /// reached interface).  Entries are retained under an LRU entry/byte
  /// budget (`set_flat_cache_budget`); the shared_ptr keeps an entry alive
  /// across its eviction, so callers may hold it as long as the index
  /// lives.  Thread-safe.
  [[nodiscard]] std::shared_ptr<const CompiledFlat> flat(
      const ClusterSelection& selection) const;

  /// Reconfigures the flatten-cache LRU budget (entries / approximate
  /// payload bytes; 0 = unlimited for that dimension) and evicts down to
  /// it.  Thread-safe; `const` because the cache is memoization state.
  void set_flat_cache_budget(std::size_t max_entries,
                             std::size_t max_bytes) const;
  /// Live flatten-cache entries / cumulative LRU evictions.
  [[nodiscard]] std::uint64_t flat_cache_entries() const;
  [[nodiscard]] std::uint64_t flat_cache_evictions() const;

  // ---- hierarchical decomposition -------------------------------------------

  /// The static decomposition of `cluster`'s interior.
  [[nodiscard]] const ClusterDecomposition& decomposition(
      ClusterId cluster) const {
    return decomposition_[cluster.index()];
  }
  /// True when the root decomposes: the hierarchical solve path can beat
  /// the flat kernel on this spec.  When false the flat path is used
  /// unchanged (identical stats, not merely identical verdicts).
  [[nodiscard]] bool hier_useful() const { return hier_useful_; }
  /// Communication units (buses), over the unit universe — the
  /// allocation-projection mask extension for the one-hop comm model.
  [[nodiscard]] const DynBitset& comm_units() const { return comm_units_; }

 private:
  using FlatKey = std::vector<std::pair<std::uint32_t, std::uint32_t>>;
  struct FlatEntry {
    std::shared_ptr<const CompiledFlat> flat;  ///< null = failed flattening
    std::size_t bytes = 0;
    std::list<const FlatKey*>::iterator lru;   ///< position in lru_
  };

  void build_decomposition();
  void evict_flat_locked() const;

  const SpecificationGraph& spec_;

  // Units (copied so the index is self-contained).
  std::vector<AllocUnit> units_;
  std::vector<AllocUnitId> resource_to_unit_;  // by architecture NodeId
  std::vector<double> unit_capacity_;          // by unit
  DynBitset mappable_units_;
  std::vector<std::vector<NodeId>> comm_neighbor_tops_;  // by unit

  // Allocation-cost inputs: interface cost charged once per allocated
  // configuration; `unit_iface_slot_` maps cluster units to a dense slot.
  std::vector<std::size_t> unit_iface_slot_;  // by unit; npos for vertex units
  std::vector<double> iface_cost_;            // by slot
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Mapping edges, CSR by process.
  std::vector<std::size_t> map_offsets_;     // node_count + 1
  std::vector<CompiledMapping> map_entries_;

  // Reachable units per process.
  std::vector<DynBitset> reach_bits_;        // by problem NodeId
  std::vector<std::size_t> reach_offsets_;   // node_count + 1
  std::vector<AllocUnitId> reach_list_;

  // Candidate processes per unit, CSR.
  std::vector<std::size_t> unit_proc_offsets_;  // unit_count + 1
  std::vector<NodeId> unit_procs_;

  // Dense per-process attributes.
  std::vector<double> period_, weight_, footprint_, demand_;

  // Per-unit communication bitsets over the unit universe.
  std::vector<DynBitset> tops_direct_;  // same top or direct edge
  std::vector<DynBitset> comm_adj_;     // comm units adjacent to my top
  DynBitset comm_units_;                // all comm units

  // Hierarchical decomposition sub-index, by cluster id.
  std::vector<ClusterDecomposition> decomposition_;
  bool hier_useful_ = false;

  // Flatten cache; null entries memoize failed flattenings.  `lru_` orders
  // the keys most-recently-used first; entries beyond the budget are
  // evicted (their flattening stays alive through any shared_ptr a caller
  // still holds, and is simply recomputed on the next request).
  mutable std::mutex flat_mutex_;
  mutable std::map<FlatKey, FlatEntry> flat_cache_;
  mutable std::list<const FlatKey*> lru_;
  mutable std::size_t flat_bytes_ = 0;
  mutable std::size_t flat_max_entries_ = 1024;
  mutable std::size_t flat_max_bytes_ = std::size_t{64} << 20;
  mutable std::uint64_t flat_evictions_ = 0;
};

}  // namespace sdf
