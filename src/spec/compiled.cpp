#include "spec/compiled.hpp"

#include <algorithm>
#include <functional>
#include <utility>

namespace sdf {

CompiledSpec::CompiledSpec(const SpecificationGraph& spec) : spec_(spec) {
  const HierarchicalGraph& problem = spec.problem();
  const HierarchicalGraph& arch = spec.architecture();
  const std::size_t np = problem.node_count();

  // ---- units: copy the universe, resolve resources, price interfaces -------
  units_ = spec.alloc_units();
  const std::size_t nu = units_.size();
  resource_to_unit_.resize(arch.node_count());
  for (std::size_t i = 0; i < arch.node_count(); ++i)
    resource_to_unit_[i] = spec.unit_of_resource(NodeId{i});

  unit_capacity_.resize(nu, 0.0);
  unit_iface_slot_.assign(nu, npos);
  for (const AllocUnit& u : units_) {
    unit_capacity_[u.id.index()] =
        u.is_cluster_unit() ? arch.attr_or(u.cluster, attr::kCapacity, 0.0)
                            : arch.attr_or(u.vertex, attr::kCapacity, 0.0);
    if (!u.is_cluster_unit()) continue;
    // One dense slot per configurable device (top interface), so the
    // device's own cost is charged at most once per allocation.
    std::size_t slot = npos;
    for (std::size_t j = 0; j < u.id.index(); ++j)
      if (units_[j].is_cluster_unit() && units_[j].top == u.top) {
        slot = unit_iface_slot_[j];
        break;
      }
    if (slot == npos) {
      slot = iface_cost_.size();
      iface_cost_.push_back(arch.attr_or(u.top, attr::kCost, 0.0));
    }
    unit_iface_slot_[u.id.index()] = slot;
  }

  // ---- mapping edges: CSR by process, insertion order preserved ------------
  const std::vector<MappingEdge>& mappings = spec.mappings();
  map_offsets_.assign(np + 1, 0);
  for (const MappingEdge& m : mappings) ++map_offsets_[m.process.index() + 1];
  for (std::size_t i = 0; i < np; ++i) map_offsets_[i + 1] += map_offsets_[i];
  map_entries_.resize(mappings.size());
  {
    std::vector<std::size_t> cursor(map_offsets_.begin(),
                                    map_offsets_.end() - 1);
    for (const MappingEdge& m : mappings) {
      const AllocUnitId unit = m.resource.index() < resource_to_unit_.size()
                                   ? resource_to_unit_[m.resource.index()]
                                   : AllocUnitId{};
      map_entries_[cursor[m.process.index()]++] =
          CompiledMapping{m.resource, unit, m.latency};
    }
  }

  // ---- reachability: bitset + first-seen-order list per process ------------
  reach_bits_.assign(np, DynBitset(nu));
  reach_offsets_.assign(np + 1, 0);
  for (std::size_t p = 0; p < np; ++p) {
    for (const CompiledMapping& m : mappings_of(NodeId{p}))
      if (m.unit.valid() && !reach_bits_[p].test(m.unit.index())) {
        reach_bits_[p].set(m.unit.index());
        ++reach_offsets_[p + 1];
      }
  }
  for (std::size_t i = 0; i < np; ++i)
    reach_offsets_[i + 1] += reach_offsets_[i];
  reach_list_.resize(reach_offsets_[np]);
  {
    std::vector<std::size_t> cursor(reach_offsets_.begin(),
                                    reach_offsets_.end() - 1);
    DynBitset seen(nu);
    for (std::size_t p = 0; p < np; ++p) {
      seen.clear();
      for (const CompiledMapping& m : mappings_of(NodeId{p}))
        if (m.unit.valid() && !seen.test(m.unit.index())) {
          seen.set(m.unit.index());
          reach_list_[cursor[p]++] = m.unit;
        }
    }
  }

  // ---- candidate processes per unit (ascending, deduplicated) --------------
  mappable_units_ = DynBitset(nu);
  unit_proc_offsets_.assign(nu + 1, 0);
  for (std::size_t p = 0; p < np; ++p)
    reach_bits_[p].for_each([&](std::size_t u) {
      mappable_units_.set(u);
      ++unit_proc_offsets_[u + 1];
    });
  for (std::size_t i = 0; i < nu; ++i)
    unit_proc_offsets_[i + 1] += unit_proc_offsets_[i];
  unit_procs_.resize(unit_proc_offsets_[nu]);
  {
    std::vector<std::size_t> cursor(unit_proc_offsets_.begin(),
                                    unit_proc_offsets_.end() - 1);
    for (std::size_t p = 0; p < np; ++p)
      reach_bits_[p].for_each(
          [&](std::size_t u) { unit_procs_[cursor[u]++] = NodeId{p}; });
  }

  // ---- dense per-process attributes ----------------------------------------
  period_.resize(np);
  weight_.resize(np);
  footprint_.resize(np);
  demand_.resize(np, 0.0);
  for (std::size_t p = 0; p < np; ++p) {
    const NodeId id{p};
    period_[p] = problem.attr_or(id, attr::kPeriod, 0.0);
    weight_[p] = problem.attr_or(id, attr::kTimingWeight, 1.0);
    footprint_[p] = problem.attr_or(id, attr::kFootprint, 0.0);
    if (period_[p] > 0.0 && weight_[p] > 0.0)
      demand_[p] = weight_[p] / period_[p];
  }

  // ---- communication: per-top adjacency folded into per-unit bitsets -------
  // Architecture-edge adjacency of each node (either direction), as a
  // bitset over architecture nodes.
  std::vector<DynBitset> arch_adj(arch.node_count(),
                                  DynBitset(arch.node_count()));
  for (const Edge& e : arch.edges()) {
    arch_adj[e.from.index()].set(e.to.index());
    arch_adj[e.to.index()].set(e.from.index());
  }

  comm_neighbor_tops_.resize(nu);
  tops_direct_.assign(nu, DynBitset(nu));
  comm_adj_.assign(nu, DynBitset(nu));
  comm_units_ = DynBitset(nu);
  for (const AllocUnit& a : units_) {
    const std::size_t i = a.id.index();
    if (a.is_comm) comm_units_.set(i);
    for (const AllocUnit& b : units_) {
      if (a.top == b.top || arch_adj[a.top.index()].test(b.top.index()))
        tops_direct_[i].set(b.id.index());
      if (b.is_comm && arch_adj[b.top.index()].test(a.top.index()))
        comm_adj_[i].set(b.id.index());
    }
    if (a.is_comm)
      arch_adj[a.top.index()].for_each([&](std::size_t n) {
        comm_neighbor_tops_[i].push_back(NodeId{n});
      });
  }

  build_decomposition();
}

void CompiledSpec::build_decomposition() {
  const HierarchicalGraph& problem = spec_.problem();
  const std::size_t np = problem.node_count();
  const std::size_t nc = problem.cluster_count();
  const std::size_t nu = units_.size();
  const std::size_t nslots = iface_cost_.size();

  // ---- per-node subtree closures (over all alternatives), bottom-up -------
  // `dev` tracks the dense device slots (`unit_iface_slot_`) reachable in a
  // subtree: two subtrees touching configurations of the same device couple
  // through the exclusive-configuration rule even with disjoint unit sets.
  std::vector<DynBitset> sub_nodes(np, DynBitset(np));
  std::vector<DynBitset> sub_ifaces(np, DynBitset(np));
  std::vector<DynBitset> sub_units(np, DynBitset(nu));
  std::vector<DynBitset> sub_dev(np, DynBitset(nslots));
  std::vector<std::uint8_t> done(np, 0);

  // Explicit DFS keeps arbitrarily deep hierarchies off the call stack.
  const std::function<void(NodeId)> close_node = [&](NodeId id) {
    const std::size_t i = id.index();
    if (done[i] != 0) return;
    done[i] = 1;  // hierarchy is a forest: no cycles, set-before-recurse ok
    const Node& n = problem.node(id);
    sub_nodes[i].set(i);
    if (!n.is_interface()) {
      if (i < reach_bits_.size()) {
        sub_units[i] |= reach_bits_[i];
        reach_bits_[i].for_each([&](std::size_t u) {
          const std::size_t slot = unit_iface_slot_[u];
          if (slot != npos) sub_dev[i].set(slot);
        });
      }
      return;
    }
    sub_ifaces[i].set(i);
    for (const ClusterId cid : n.clusters) {
      for (const NodeId child : problem.cluster(cid).nodes) {
        close_node(child);
        sub_nodes[i] |= sub_nodes[child.index()];
        sub_ifaces[i] |= sub_ifaces[child.index()];
        sub_units[i] |= sub_units[child.index()];
        sub_dev[i] |= sub_dev[child.index()];
      }
    }
  };
  for (std::size_t i = 0; i < np; ++i) close_node(NodeId{i});

  // ---- per-cluster union-find over direct nodes ----------------------------
  decomposition_.assign(nc, ClusterDecomposition{});
  for (std::size_t ci = 0; ci < nc; ++ci) {
    const Cluster& cluster = problem.cluster(ClusterId{ci});
    const std::size_t k = cluster.nodes.size();
    if (k == 0) continue;

    std::vector<std::size_t> parent(k);
    for (std::size_t i = 0; i < k; ++i) parent[i] = i;
    const std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    const auto unite = [&](std::size_t a, std::size_t b) {
      parent[find(a)] = find(b);
    };

    std::map<NodeId, std::size_t> pos;
    for (std::size_t i = 0; i < k; ++i) pos[cluster.nodes[i]] = i;

    // (a) dependence edges of this cluster couple their endpoints.
    for (const EdgeId eid : cluster.edges) {
      const Edge& e = problem.edge(eid);
      const auto fa = pos.find(e.from);
      const auto fb = pos.find(e.to);
      if (fa != pos.end() && fb != pos.end()) unite(fa->second, fb->second);
    }
    // (b) shared mappable units couple via utilization/capacity sums;
    // (c) shared devices couple via exclusive configurations.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t ni = cluster.nodes[i].index();
      for (std::size_t j = 0; j < i; ++j) {
        const std::size_t nj = cluster.nodes[j].index();
        if (sub_units[ni].intersects(sub_units[nj]) ||
            sub_dev[ni].intersects(sub_dev[nj]))
          unite(i, j);
      }
    }

    // ---- materialize groups, ascending by smallest member ------------------
    std::map<std::size_t, std::size_t> group_of_root;
    ClusterDecomposition& d = decomposition_[ci];
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t r = find(i);
      const auto [it, inserted] = group_of_root.emplace(r, d.groups.size());
      if (inserted) {
        d.groups.push_back(ClusterGroup{});
        ClusterGroup& g = d.groups.back();
        g.subtree_nodes = DynBitset(np);
        g.subtree_interfaces = DynBitset(np);
        g.subtree_units = DynBitset(nu);
      }
      ClusterGroup& g = d.groups[it->second];
      const NodeId item = cluster.nodes[i];
      g.items.push_back(item);
      g.subtree_nodes |= sub_nodes[item.index()];
      g.subtree_interfaces |= sub_ifaces[item.index()];
      g.subtree_units |= sub_units[item.index()];
    }
    for (ClusterGroup& g : d.groups) {
      g.single_interface =
          g.items.size() == 1 && problem.node(g.items[0]).is_interface();
      // FNV-1a over the group's static port signature.
      std::uint64_t h = 1469598103934665603ull;
      const auto mix = [&h](std::uint64_t w) {
        h ^= w;
        h *= 1099511628211ull;
      };
      mix(g.items.size());
      for (const NodeId item : g.items) {
        const Node& n = problem.node(item);
        mix(n.is_interface() ? 1 : 2);
        if (!n.is_interface()) continue;
        mix(n.ports.size());
        for (const PortId pid : n.ports) {
          const Port& port = problem.port(pid);
          mix(port.direction == PortDirection::kIn ? 3 : 4);
          mix(port.mapping.size());
        }
        mix(n.clusters.size());
      }
      g.signature = h;
    }
  }

  // ---- usefulness: can the hierarchical path ever beat the flat kernel? ---
  std::vector<std::uint8_t> state(nc, 0);  // 0 = unvisited, 1 = done
  const std::function<bool(ClusterId)> useful = [&](ClusterId cid) -> bool {
    ClusterDecomposition& d = decomposition_[cid.index()];
    if (state[cid.index()] != 0) return d.useful;
    state[cid.index()] = 1;
    if (d.groups.size() > 1) {
      d.useful = true;
    } else if (d.groups.size() == 1 && d.groups[0].single_interface) {
      for (const ClusterId alt : problem.node(d.groups[0].items[0]).clusters)
        if (useful(alt)) d.useful = true;
    }
    return d.useful;
  };
  for (std::size_t ci = 0; ci < nc; ++ci) useful(ClusterId{ci});
  hier_useful_ = useful(problem.root());
}

double CompiledSpec::allocation_cost(const AllocSet& alloc) const {
  // Summation order matches the SpecificationGraph shim bit-for-bit:
  // ascending unit index, each unit's cost followed by its device's cost
  // the first time a configuration of that device appears.
  double cost = 0.0;
  if (iface_cost_.size() <= 64) {
    std::uint64_t charged = 0;
    alloc.for_each([&](std::size_t i) {
      cost += units_[i].cost;
      const std::size_t slot = unit_iface_slot_[i];
      if (slot == npos) return;
      const std::uint64_t bit = std::uint64_t{1} << slot;
      if ((charged & bit) == 0) {
        charged |= bit;
        cost += iface_cost_[slot];
      }
    });
  } else {
    DynBitset charged(iface_cost_.size());
    alloc.for_each([&](std::size_t i) {
      cost += units_[i].cost;
      const std::size_t slot = unit_iface_slot_[i];
      if (slot != npos && !charged.test(slot)) {
        charged.set(slot);
        cost += iface_cost_[slot];
      }
    });
  }
  return cost;
}

namespace {

/// Approximate heap payload of one flatten-cache entry, for the byte budget.
std::size_t flat_entry_bytes(const CompiledFlat* flat) {
  if (flat == nullptr) return sizeof(void*);
  std::size_t bytes = sizeof(CompiledFlat);
  bytes += flat->graph.vertices.capacity() * sizeof(NodeId);
  bytes += flat->graph.edges.capacity() * sizeof(std::pair<NodeId, NodeId>);
  bytes += flat->graph.active_clusters.capacity() * sizeof(ClusterId);
  bytes += flat->graph.active_interfaces.capacity() * sizeof(NodeId);
  bytes += flat->index_of.capacity() * sizeof(std::size_t);
  bytes += flat->adj.capacity() * sizeof(std::vector<std::size_t>);
  for (const std::vector<std::size_t>& n : flat->adj)
    bytes += n.capacity() * sizeof(std::size_t);
  bytes += (flat->demand.capacity() + flat->footprint.capacity()) *
           sizeof(double);
  return bytes;
}

}  // namespace

void CompiledSpec::evict_flat_locked() const {
  while (flat_cache_.size() > 1 &&
         ((flat_max_entries_ != 0 && flat_cache_.size() > flat_max_entries_) ||
          (flat_max_bytes_ != 0 && flat_bytes_ > flat_max_bytes_))) {
    const FlatKey* victim = lru_.back();
    const auto it = flat_cache_.find(*victim);
    SDF_CHECK(it != flat_cache_.end(), "flatten-cache LRU key without entry");
    flat_bytes_ -= it->second.bytes;
    lru_.pop_back();
    flat_cache_.erase(it);
    ++flat_evictions_;
  }
}

std::shared_ptr<const CompiledFlat> CompiledSpec::flat(
    const ClusterSelection& selection) const {
  FlatKey key = selection.key();
  {
    const std::lock_guard<std::mutex> lock(flat_mutex_);
    if (const auto it = flat_cache_.find(key); it != flat_cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // move to front
      return it->second.flat;
    }
  }

  // Build outside the lock: flattening is pure, and a concurrent duplicate
  // build is cheaper than serializing every miss.
  Result<FlatGraph> fg = flatten(spec_.problem(), selection);
  std::shared_ptr<CompiledFlat> entry;  // null memoizes a failed flattening
  if (fg.ok()) {
    entry = std::make_shared<CompiledFlat>();
    entry->graph = std::move(fg.value());
    const std::vector<NodeId>& vertices = entry->graph.vertices;
    entry->index_of.assign(spec_.problem().node_count(), CompiledFlat::npos);
    for (std::size_t i = 0; i < vertices.size(); ++i)
      entry->index_of[vertices[i].index()] = i;
    entry->adj.resize(vertices.size());
    for (const auto& [from, to] : entry->graph.edges) {
      const std::size_t a = entry->index_of[from.index()];
      const std::size_t b = entry->index_of[to.index()];
      SDF_CHECK(a != CompiledFlat::npos && b != CompiledFlat::npos,
                "flat edge endpoint is not an active leaf");
      entry->adj[a].push_back(b);
      entry->adj[b].push_back(a);
    }
    entry->demand.resize(vertices.size());
    entry->footprint.resize(vertices.size());
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      entry->demand[i] = demand_[vertices[i].index()];
      entry->footprint[i] = footprint_[vertices[i].index()];
    }
  }

  const std::lock_guard<std::mutex> lock(flat_mutex_);
  const auto [it, inserted] = flat_cache_.try_emplace(std::move(key));
  if (!inserted) {
    // A concurrent miss beat us to the publish; keep the winner's entry so
    // every caller observes one canonical flattening per selection.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.flat;
  }
  it->second.flat = std::move(entry);
  it->second.bytes = flat_entry_bytes(it->second.flat.get());
  lru_.push_front(&it->first);
  it->second.lru = lru_.begin();
  flat_bytes_ += it->second.bytes;
  evict_flat_locked();
  return it->second.flat;
}

void CompiledSpec::set_flat_cache_budget(std::size_t max_entries,
                                         std::size_t max_bytes) const {
  const std::lock_guard<std::mutex> lock(flat_mutex_);
  flat_max_entries_ = max_entries;
  flat_max_bytes_ = max_bytes;
  evict_flat_locked();
}

std::uint64_t CompiledSpec::flat_cache_entries() const {
  const std::lock_guard<std::mutex> lock(flat_mutex_);
  return flat_cache_.size();
}

std::uint64_t CompiledSpec::flat_cache_evictions() const {
  const std::lock_guard<std::mutex> lock(flat_mutex_);
  return flat_evictions_;
}

}  // namespace sdf
