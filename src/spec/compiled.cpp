#include "spec/compiled.hpp"

#include <algorithm>
#include <utility>

namespace sdf {

CompiledSpec::CompiledSpec(const SpecificationGraph& spec) : spec_(spec) {
  const HierarchicalGraph& problem = spec.problem();
  const HierarchicalGraph& arch = spec.architecture();
  const std::size_t np = problem.node_count();

  // ---- units: copy the universe, resolve resources, price interfaces -------
  units_ = spec.alloc_units();
  const std::size_t nu = units_.size();
  resource_to_unit_.resize(arch.node_count());
  for (std::size_t i = 0; i < arch.node_count(); ++i)
    resource_to_unit_[i] = spec.unit_of_resource(NodeId{i});

  unit_capacity_.resize(nu, 0.0);
  unit_iface_slot_.assign(nu, npos);
  for (const AllocUnit& u : units_) {
    unit_capacity_[u.id.index()] =
        u.is_cluster_unit() ? arch.attr_or(u.cluster, attr::kCapacity, 0.0)
                            : arch.attr_or(u.vertex, attr::kCapacity, 0.0);
    if (!u.is_cluster_unit()) continue;
    // One dense slot per configurable device (top interface), so the
    // device's own cost is charged at most once per allocation.
    std::size_t slot = npos;
    for (std::size_t j = 0; j < u.id.index(); ++j)
      if (units_[j].is_cluster_unit() && units_[j].top == u.top) {
        slot = unit_iface_slot_[j];
        break;
      }
    if (slot == npos) {
      slot = iface_cost_.size();
      iface_cost_.push_back(arch.attr_or(u.top, attr::kCost, 0.0));
    }
    unit_iface_slot_[u.id.index()] = slot;
  }

  // ---- mapping edges: CSR by process, insertion order preserved ------------
  const std::vector<MappingEdge>& mappings = spec.mappings();
  map_offsets_.assign(np + 1, 0);
  for (const MappingEdge& m : mappings) ++map_offsets_[m.process.index() + 1];
  for (std::size_t i = 0; i < np; ++i) map_offsets_[i + 1] += map_offsets_[i];
  map_entries_.resize(mappings.size());
  {
    std::vector<std::size_t> cursor(map_offsets_.begin(),
                                    map_offsets_.end() - 1);
    for (const MappingEdge& m : mappings) {
      const AllocUnitId unit = m.resource.index() < resource_to_unit_.size()
                                   ? resource_to_unit_[m.resource.index()]
                                   : AllocUnitId{};
      map_entries_[cursor[m.process.index()]++] =
          CompiledMapping{m.resource, unit, m.latency};
    }
  }

  // ---- reachability: bitset + first-seen-order list per process ------------
  reach_bits_.assign(np, DynBitset(nu));
  reach_offsets_.assign(np + 1, 0);
  for (std::size_t p = 0; p < np; ++p) {
    for (const CompiledMapping& m : mappings_of(NodeId{p}))
      if (m.unit.valid() && !reach_bits_[p].test(m.unit.index())) {
        reach_bits_[p].set(m.unit.index());
        ++reach_offsets_[p + 1];
      }
  }
  for (std::size_t i = 0; i < np; ++i)
    reach_offsets_[i + 1] += reach_offsets_[i];
  reach_list_.resize(reach_offsets_[np]);
  {
    std::vector<std::size_t> cursor(reach_offsets_.begin(),
                                    reach_offsets_.end() - 1);
    DynBitset seen(nu);
    for (std::size_t p = 0; p < np; ++p) {
      seen.clear();
      for (const CompiledMapping& m : mappings_of(NodeId{p}))
        if (m.unit.valid() && !seen.test(m.unit.index())) {
          seen.set(m.unit.index());
          reach_list_[cursor[p]++] = m.unit;
        }
    }
  }

  // ---- candidate processes per unit (ascending, deduplicated) --------------
  mappable_units_ = DynBitset(nu);
  unit_proc_offsets_.assign(nu + 1, 0);
  for (std::size_t p = 0; p < np; ++p)
    reach_bits_[p].for_each([&](std::size_t u) {
      mappable_units_.set(u);
      ++unit_proc_offsets_[u + 1];
    });
  for (std::size_t i = 0; i < nu; ++i)
    unit_proc_offsets_[i + 1] += unit_proc_offsets_[i];
  unit_procs_.resize(unit_proc_offsets_[nu]);
  {
    std::vector<std::size_t> cursor(unit_proc_offsets_.begin(),
                                    unit_proc_offsets_.end() - 1);
    for (std::size_t p = 0; p < np; ++p)
      reach_bits_[p].for_each(
          [&](std::size_t u) { unit_procs_[cursor[u]++] = NodeId{p}; });
  }

  // ---- dense per-process attributes ----------------------------------------
  period_.resize(np);
  weight_.resize(np);
  footprint_.resize(np);
  demand_.resize(np, 0.0);
  for (std::size_t p = 0; p < np; ++p) {
    const NodeId id{p};
    period_[p] = problem.attr_or(id, attr::kPeriod, 0.0);
    weight_[p] = problem.attr_or(id, attr::kTimingWeight, 1.0);
    footprint_[p] = problem.attr_or(id, attr::kFootprint, 0.0);
    if (period_[p] > 0.0 && weight_[p] > 0.0)
      demand_[p] = weight_[p] / period_[p];
  }

  // ---- communication: per-top adjacency folded into per-unit bitsets -------
  // Architecture-edge adjacency of each node (either direction), as a
  // bitset over architecture nodes.
  std::vector<DynBitset> arch_adj(arch.node_count(),
                                  DynBitset(arch.node_count()));
  for (const Edge& e : arch.edges()) {
    arch_adj[e.from.index()].set(e.to.index());
    arch_adj[e.to.index()].set(e.from.index());
  }

  comm_neighbor_tops_.resize(nu);
  tops_direct_.assign(nu, DynBitset(nu));
  comm_adj_.assign(nu, DynBitset(nu));
  for (const AllocUnit& a : units_) {
    const std::size_t i = a.id.index();
    for (const AllocUnit& b : units_) {
      if (a.top == b.top || arch_adj[a.top.index()].test(b.top.index()))
        tops_direct_[i].set(b.id.index());
      if (b.is_comm && arch_adj[b.top.index()].test(a.top.index()))
        comm_adj_[i].set(b.id.index());
    }
    if (a.is_comm)
      arch_adj[a.top.index()].for_each([&](std::size_t n) {
        comm_neighbor_tops_[i].push_back(NodeId{n});
      });
  }
}

double CompiledSpec::allocation_cost(const AllocSet& alloc) const {
  // Summation order matches the SpecificationGraph shim bit-for-bit:
  // ascending unit index, each unit's cost followed by its device's cost
  // the first time a configuration of that device appears.
  double cost = 0.0;
  if (iface_cost_.size() <= 64) {
    std::uint64_t charged = 0;
    alloc.for_each([&](std::size_t i) {
      cost += units_[i].cost;
      const std::size_t slot = unit_iface_slot_[i];
      if (slot == npos) return;
      const std::uint64_t bit = std::uint64_t{1} << slot;
      if ((charged & bit) == 0) {
        charged |= bit;
        cost += iface_cost_[slot];
      }
    });
  } else {
    DynBitset charged(iface_cost_.size());
    alloc.for_each([&](std::size_t i) {
      cost += units_[i].cost;
      const std::size_t slot = unit_iface_slot_[i];
      if (slot != npos && !charged.test(slot)) {
        charged.set(slot);
        cost += iface_cost_[slot];
      }
    });
  }
  return cost;
}

const CompiledFlat* CompiledSpec::flat(
    const ClusterSelection& selection) const {
  FlatKey key = selection.key();
  const std::lock_guard<std::mutex> lock(flat_mutex_);
  if (const auto it = flat_cache_.find(key); it != flat_cache_.end())
    return it->second.get();

  Result<FlatGraph> fg = flatten(spec_.problem(), selection);
  std::unique_ptr<CompiledFlat> entry;  // null memoizes a failed flattening
  if (fg.ok()) {
    entry = std::make_unique<CompiledFlat>();
    entry->graph = std::move(fg.value());
    const std::vector<NodeId>& vertices = entry->graph.vertices;
    entry->index_of.assign(spec_.problem().node_count(), CompiledFlat::npos);
    for (std::size_t i = 0; i < vertices.size(); ++i)
      entry->index_of[vertices[i].index()] = i;
    entry->adj.resize(vertices.size());
    for (const auto& [from, to] : entry->graph.edges) {
      const std::size_t a = entry->index_of[from.index()];
      const std::size_t b = entry->index_of[to.index()];
      SDF_CHECK(a != CompiledFlat::npos && b != CompiledFlat::npos,
                "flat edge endpoint is not an active leaf");
      entry->adj[a].push_back(b);
      entry->adj[b].push_back(a);
    }
    entry->demand.resize(vertices.size());
    entry->footprint.resize(vertices.size());
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      entry->demand[i] = demand_[vertices[i].index()];
      entry->footprint[i] = footprint_[vertices[i].index()];
    }
  }
  return flat_cache_.emplace(std::move(key), std::move(entry))
      .first->second.get();
}

}  // namespace sdf
