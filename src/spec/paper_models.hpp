// The paper's running examples as ready-made specifications.
//
// * `make_tv_decoder_spec()`    — Figs. 1 & 2: the digital TV decoder with a
//                                 uP / ASIC / FPGA architecture.
// * `make_settop_spec()`        — Figs. 3 & 5 + Table 1: the Set-Top box
//                                 family (digital TV + Internet browser +
//                                 game console) used in the case study (§5).
//
// Mapping latencies of the Set-Top box follow Table 1 verbatim.  The paper
// omits the Fig. 5 bus topology and the individual allocation costs of A2,
// A3 and the buses; the values chosen here are calibrated so that the
// published Pareto front (§5: ($100,2) ($120,3) ($230,4) ($290,5) ($360,7)
// ($430,8) with the published resource/cluster sets) is the unique outcome.
// DESIGN.md documents the calibration.
#pragma once

#include "spec/specification.hpp"

namespace sdf::models {

/// Fig. 1 + Fig. 2: hierarchical TV-decoder specification.
/// Problem:  P_A, P_C and interfaces I_D (3 decryptors), I_U (2
/// uncompressors), dependence I_D -> I_U.
/// Architecture:  uP, ASIC A, FPGA with configurations {D3, U1, U2}, buses
/// C1 (uP-FPGA) and C2 (uP-A).  Fig. 2's infeasible-binding example (P_D^2
/// on A together with P_U^1 on the FPGA) holds in this model.
[[nodiscard]] SpecificationGraph make_tv_decoder_spec();

/// Fig. 3 problem graph + Fig. 5 architecture + Table 1 mappings: the
/// Set-Top box family specification of the case study.
[[nodiscard]] SpecificationGraph make_settop_spec();

/// Names of the case study's six Pareto points, paper order.  Used by tests
/// and the bench that regenerates the §5 results table.
struct SettopParetoRow {
  const char* resources;  ///< e.g. "uP2, C1, G1, U2"
  const char* clusters;   ///< e.g. "gI, gG1, gD1, gU1, gU2"
  double cost;
  double flexibility;
};
[[nodiscard]] const std::vector<SettopParetoRow>& settop_expected_front();

}  // namespace sdf::models
