// Combined DOT rendering of a full specification graph (Fig. 2 style):
// problem graph on the left, architecture graph on the right, dotted
// mapping edges between their leaves, costs and latencies annotated.
#pragma once

#include <string>

#include "spec/specification.hpp"

namespace sdf {

struct SpecDotOptions {
  std::string title;
  /// Render mapping-edge latencies as edge labels.
  bool show_latencies = true;
  /// Highlight the units of this allocation (filled nodes); pass nullptr
  /// to render the plain specification.
  const AllocSet* highlight = nullptr;
};

/// DOT source of the whole specification graph G_S.
[[nodiscard]] std::string to_dot(const SpecificationGraph& spec,
                                 const SpecDotOptions& options = {});

}  // namespace sdf
