// JSON (de)serialization of specification graphs.
//
// The schema mirrors the model one-to-one: a graph is its root cluster;
// a cluster holds nodes and edges; an interface node holds its alternative
// clusters and ports.  All cross-references (edges, port mappings, mapping
// edges) are by name, so node/cluster names must be unique within their
// graph for a specification to round-trip.
//
// Example:
//   {
//     "name": "tv_decoder",
//     "problem": { "root": { "nodes": [...], "edges": [...] } },
//     "architecture": { ... },
//     "mappings": [ {"process": "Pu1", "resource": "uP", "latency": 40} ]
//   }
#pragma once

#include <string>

#include "spec/specification.hpp"
#include "util/byte_reader.hpp"
#include "util/json.hpp"
#include "util/json_stream.hpp"

namespace sdf {

/// Serializes `spec` to a JSON document.  Fails when names are not unique
/// within a graph (the format references entities by name).
[[nodiscard]] Result<Json> spec_to_json(const SpecificationGraph& spec);

/// Convenience: pretty-printed JSON text.
[[nodiscard]] Result<std::string> spec_to_string(
    const SpecificationGraph& spec);

/// Options controlling specification parsing.
struct SpecParseOptions {
  /// Run `SpecificationGraph::validate()` after parsing and fail on the
  /// first structural error.  Diagnostic tools (`sdf lint` / `sdf validate`)
  /// turn this off so they can load a defective specification and report
  /// *all* findings through the lint engine instead.
  bool validate = true;
  /// Resource caps applied while parsing (see `JsonLimits`).  The front
  /// door defaults to the ingest caps: hostile inputs that are small on
  /// the wire but explosive in memory are rejected mid-parse, before the
  /// memory is ever allocated.
  JsonLimits limits = JsonLimits::ingest_defaults();
};

/// Parses a specification from a JSON document.  Shares the streaming
/// schema reader with `spec_from_stream` (the DOM is replayed as an event
/// stream), so both paths accept exactly the same documents.
[[nodiscard]] Result<SpecificationGraph> spec_from_json(
    const Json& doc, const SpecParseOptions& options = {});

/// Parses a specification from JSON text.  Thin shim over
/// `spec_from_stream`: the whole text is fed as one chunk.
[[nodiscard]] Result<SpecificationGraph> spec_from_string(
    std::string_view text, const SpecParseOptions& options = {});

/// Streaming front door: pulls chunks from `in` and builds the
/// specification incrementally as elements complete.  Memory stays bounded
/// by `options.limits` regardless of input size; the input never needs to
/// be materialized as one contiguous buffer.  Within composite elements
/// the identifying keys must come first ("name"/"kind" before a node's
/// "clusters"/"ports", a cluster's "name" before its contents) — the order
/// the writer has always emitted.
[[nodiscard]] Result<SpecificationGraph> spec_from_stream(
    ByteReader& in, const SpecParseOptions& options = {});

/// Opens `path` ("-" = stdin) and parses it via `spec_from_stream`.
[[nodiscard]] Result<SpecificationGraph> spec_from_file(
    const std::string& path, const SpecParseOptions& options = {});

}  // namespace sdf
