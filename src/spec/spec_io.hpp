// JSON (de)serialization of specification graphs.
//
// The schema mirrors the model one-to-one: a graph is its root cluster;
// a cluster holds nodes and edges; an interface node holds its alternative
// clusters and ports.  All cross-references (edges, port mappings, mapping
// edges) are by name, so node/cluster names must be unique within their
// graph for a specification to round-trip.
//
// Example:
//   {
//     "name": "tv_decoder",
//     "problem": { "root": { "nodes": [...], "edges": [...] } },
//     "architecture": { ... },
//     "mappings": [ {"process": "Pu1", "resource": "uP", "latency": 40} ]
//   }
#pragma once

#include <string>

#include "spec/specification.hpp"
#include "util/json.hpp"

namespace sdf {

/// Serializes `spec` to a JSON document.  Fails when names are not unique
/// within a graph (the format references entities by name).
[[nodiscard]] Result<Json> spec_to_json(const SpecificationGraph& spec);

/// Convenience: pretty-printed JSON text.
[[nodiscard]] Result<std::string> spec_to_string(
    const SpecificationGraph& spec);

/// Options controlling specification parsing.
struct SpecParseOptions {
  /// Run `SpecificationGraph::validate()` after parsing and fail on the
  /// first structural error.  Diagnostic tools (`sdf lint` / `sdf validate`)
  /// turn this off so they can load a defective specification and report
  /// *all* findings through the lint engine instead.
  bool validate = true;
};

/// Parses a specification from a JSON document.
[[nodiscard]] Result<SpecificationGraph> spec_from_json(
    const Json& doc, const SpecParseOptions& options = {});

/// Parses a specification from JSON text.
[[nodiscard]] Result<SpecificationGraph> spec_from_string(
    std::string_view text, const SpecParseOptions& options = {});

}  // namespace sdf
