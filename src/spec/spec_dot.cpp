#include "spec/spec_dot.hpp"

#include "util/strings.hpp"

namespace sdf {
namespace {

void emit_cluster(const HierarchicalGraph& g, ClusterId cid,
                  const std::string& prefix, const SpecDotOptions& options,
                  const SpecificationGraph* spec_for_highlight,
                  std::string& out, int depth) {
  const Cluster& c = g.cluster(cid);
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  if (!c.is_root()) {
    out += pad + "subgraph cluster_" + prefix + std::to_string(cid.value()) +
           " {\n";
    std::string label = c.name;
    if (const double cost = g.attr_or(cid, attr::kCost, 0.0); cost > 0.0)
      label += " ($" + format_double(cost) + ")";
    out += pad + "  label=\"" + label + "\";\n  " + pad + "style=dashed;\n";
  }
  for (NodeId nid : c.nodes) {
    const Node& n = g.node(nid);
    std::string label = n.name;
    if (const double cost = g.attr_or(nid, attr::kCost, 0.0); cost > 0.0)
      label += "\\n$" + format_double(cost);
    if (const double period = g.attr_or(nid, attr::kPeriod, 0.0); period > 0.0)
      label += "\\nT=" + format_double(period);
    out += pad + "  " + prefix + std::to_string(nid.value()) + " [label=\"" +
           label + "\"";
    out += n.is_interface() ? ", shape=diamond" : ", shape=box";
    if (options.highlight != nullptr && spec_for_highlight != nullptr &&
        !n.is_interface()) {
      const AllocUnitId unit = spec_for_highlight->unit_of_resource(nid);
      if (unit.valid() && options.highlight->test(unit.index()))
        out += ", style=filled, fillcolor=lightgrey";
    }
    out += "];\n";
    if (n.is_interface())
      for (ClusterId sub : n.clusters)
        emit_cluster(g, sub, prefix, options, spec_for_highlight, out,
                     depth + 1);
  }
  for (EdgeId eid : c.edges) {
    const Edge& e = g.edge(eid);
    out += pad + "  " + prefix + std::to_string(e.from.value()) + " -> " +
           prefix + std::to_string(e.to.value()) + ";\n";
  }
  if (!c.is_root()) out += pad + "}\n";
}

}  // namespace

std::string to_dot(const SpecificationGraph& spec,
                   const SpecDotOptions& options) {
  std::string out = "digraph G_S {\n  rankdir=LR;\n  compound=true;\n";
  if (!options.title.empty()) out += "  label=\"" + options.title + "\";\n";

  out += "  subgraph cluster_problem {\n    label=\"problem graph G_P\";\n";
  emit_cluster(spec.problem(), spec.problem().root(), "p", options, nullptr,
               out, 2);
  out += "  }\n";

  out += "  subgraph cluster_architecture {\n"
         "    label=\"architecture graph G_A\";\n";
  emit_cluster(spec.architecture(), spec.architecture().root(), "a", options,
               &spec, out, 2);
  out += "  }\n";

  for (const MappingEdge& m : spec.mappings()) {
    out += "  p" + std::to_string(m.process.value()) + " -> a" +
           std::to_string(m.resource.value()) + " [style=dotted, dir=none";
    if (options.show_latencies)
      out += ", label=\"" + format_double(m.latency) + "\", fontsize=9";
    out += "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace sdf
