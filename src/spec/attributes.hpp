// Attribute vocabulary of the specification layer.
//
// "Additional parameters, like priorities, power consumption, latencies,
// etc. [...] are annotated to the components of G_S."  (§2)
//
// The graph layer stores free-form numeric annotations; these keys define
// the ones the library interprets.
#pragma once

namespace sdf::attr {

/// Allocation cost of an architecture vertex, interface or cluster
/// (interfaces contribute once when any of their clusters is allocated).
inline constexpr const char* kCost = "cost";

/// Worst-case core execution latency of a mapping edge (ns).
inline constexpr const char* kLatency = "latency";

/// Minimal activation period of a problem-graph process (ns); processes
/// without a period impose no timing constraint.
inline constexpr const char* kPeriod = "period";

/// Relative activation frequency of a process within its application; the
/// utilization estimate weighs `latency/period` by this factor.  The case
/// study sets it to 0 for the authentication and controller processes
/// ("scheduled once at system start up" / "0.01% of all process calls").
inline constexpr const char* kTimingWeight = "timing_weight";

/// Marks an architecture vertex as a pure communication resource (bus).
inline constexpr const char* kComm = "comm";

/// Capacity of an architecture vertex or configuration (memory, area,
/// slices, ...).  Absent/0 = unlimited.  The binding solver rejects
/// bindings whose processes' summed footprints exceed a unit's capacity.
inline constexpr const char* kCapacity = "capacity";

/// Footprint a process occupies on its resource (same dimension as
/// kCapacity).  Absent/0 = negligible.
inline constexpr const char* kFootprint = "footprint";

}  // namespace sdf::attr
