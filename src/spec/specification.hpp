// Hierarchical specification graphs  G_S = (G_P, G_A, E_M)  (§2).
//
// A specification graph couples a hierarchical *problem graph* (behavior), a
// hierarchical *architecture graph* (allocatable resources), and
// user-defined *mapping edges* ("can be implemented by") that link leaves of
// the problem graph to leaves of the architecture graph, annotated with
// execution latencies.
//
// On the architecture side, the paper's exploration reasons about
// *allocatable units*: "only leaves v of the top-level architecture graph or
// whole clusters of the architecture graph are considered" (§4).
// `SpecificationGraph::alloc_units()` materializes that view — one unit per
// top-level architecture vertex and one per refinement cluster (e.g. one per
// FPGA configuration) — and `AllocSet` represents allocations as bitsets
// over the unit universe.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/hierarchical_graph.hpp"
#include "spec/attributes.hpp"
#include "util/dyn_bitset.hpp"

namespace sdf {

class CompiledSpec;

/// A mapping edge e in E_M with its latency annotation.
struct MappingEdge {
  NodeId process;   ///< leaf of the problem graph
  NodeId resource;  ///< leaf of the architecture graph
  double latency = 0.0;
};

struct AllocUnitTag {};
/// Dense index into `SpecificationGraph::alloc_units()`.
using AllocUnitId = StrongId<AllocUnitTag>;

/// One allocatable item of the architecture: either a top-level vertex
/// (processor, ASIC, bus) or a refinement cluster (one reconfigurable-device
/// configuration).
struct AllocUnit {
  AllocUnitId id;
  std::string name;
  /// Valid for vertex units; invalid for cluster units.
  NodeId vertex;
  /// Valid for cluster units; invalid for vertex units.
  ClusterId cluster;
  /// Allocation cost of this unit.
  double cost = 0.0;
  /// True iff this is a pure communication resource (attr::kComm).
  bool is_comm = false;
  /// The top-level architecture node this unit belongs to: the vertex
  /// itself, or the outermost enclosing interface for cluster units.  Two
  /// units with the same top node are alternative configurations of one
  /// physical device.
  NodeId top;

  [[nodiscard]] bool is_cluster_unit() const { return cluster.valid(); }
};

/// A set of allocated units (the architecture half of a timed allocation,
/// Def. 2, projected onto units).
using AllocSet = DynBitset;

class SpecificationGraph {
 public:
  SpecificationGraph();
  SpecificationGraph(std::string name);
  ~SpecificationGraph();

  // Copies and moves transfer the specification data only; the lazily
  // built caches (unit universe, compiled index) start cold in the
  // destination.
  SpecificationGraph(const SpecificationGraph& other);
  SpecificationGraph& operator=(const SpecificationGraph& other);
  SpecificationGraph(SpecificationGraph&& other) noexcept;
  SpecificationGraph& operator=(SpecificationGraph&& other) noexcept;

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Renames the specification.  Streaming ingestion needs this because a
  /// document's "name" key may arrive after construction has begun.
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] HierarchicalGraph& problem() { return problem_; }
  [[nodiscard]] const HierarchicalGraph& problem() const { return problem_; }
  [[nodiscard]] HierarchicalGraph& architecture() { return architecture_; }
  [[nodiscard]] const HierarchicalGraph& architecture() const {
    return architecture_;
  }

  /// Adds a mapping edge; `process` must be a problem-graph leaf and
  /// `resource` an architecture-graph leaf.
  void add_mapping(NodeId process, NodeId resource, double latency);

  [[nodiscard]] const std::vector<MappingEdge>& mappings() const {
    return mappings_;
  }

  /// All mapping edges leaving `process`.  Thin shim over the compiled
  /// index; hot paths should hold a `CompiledSpec` and use its
  /// zero-allocation `mappings_of` span instead.
  [[nodiscard]] std::vector<MappingEdge> mappings_of(NodeId process) const;

  /// The compiled query index of this specification, built lazily and
  /// rebuilt automatically after any mutation of the problem graph, the
  /// architecture graph, or the mapping edges.  The reference stays valid
  /// until the next mutation.  Engines that evaluate many candidates fetch
  /// this once and pass it down; the `mappings_of`/`reachable_units`/
  /// `comm_reachable`/`allocation_cost` members of this class are
  /// per-call-convenience shims over the same index.
  [[nodiscard]] const CompiledSpec& compiled() const;

  // ---- allocatable units ----------------------------------------------------

  /// The allocatable-unit universe; stable order (top-level vertices in node
  /// order, then refinement clusters in cluster order).  Built lazily and
  /// cached; adding architecture nodes invalidates the cache.
  [[nodiscard]] const std::vector<AllocUnit>& alloc_units() const;

  /// Unit by name; invalid id when absent.
  [[nodiscard]] AllocUnitId find_unit(std::string_view name) const;

  /// The unit owning architecture leaf `resource`: the leaf's top-level
  /// vertex unit, or the refinement-cluster unit whose subtree contains it.
  [[nodiscard]] AllocUnitId unit_of_resource(NodeId resource) const;

  /// Empty allocation over the unit universe.
  [[nodiscard]] AllocSet make_alloc_set() const {
    return AllocSet(alloc_units().size());
  }

  /// Allocation cost: sum of unit costs plus, once per architecture
  /// interface with at least one allocated descendant cluster, that
  /// interface's own cost (the price of the reconfigurable device itself).
  [[nodiscard]] double allocation_cost(const AllocSet& alloc) const;

  /// Human-readable unit list, e.g. "uP2, G1, U2, C1".
  [[nodiscard]] std::string allocation_names(const AllocSet& alloc) const;

  /// True iff an allocated communication path exists between the top-level
  /// architecture nodes of units `a` and `b` under `alloc`:
  ///  - `a` and `b` share the same top node (same device), or
  ///  - a direct architecture edge connects the two tops, or
  ///  - an allocated communication unit is adjacent (by architecture edges,
  ///    treated as bidirectional) to both tops.
  [[nodiscard]] bool comm_reachable(const AllocSet& alloc, AllocUnitId a,
                                    AllocUnitId b) const;

  /// Units whose `resource` mapping targets make them candidates for
  /// `process` ("reachable resources" R_ij of §4).
  [[nodiscard]] std::vector<AllocUnitId> reachable_units(NodeId process) const;

  /// Structural sanity of the whole specification (problem and architecture
  /// graphs valid, mapping edges link leaves of the right graphs).
  [[nodiscard]] Status validate() const;

 private:
  void invalidate_units() const;
  void build_units() const;
  [[nodiscard]] NodeId top_node_of(NodeId arch_node) const;

  std::string name_ = "G_S";
  HierarchicalGraph problem_;
  HierarchicalGraph architecture_;
  std::vector<MappingEdge> mappings_;

  // Lazily built unit universe (mutable cache).
  mutable std::vector<AllocUnit> units_;
  mutable std::vector<AllocUnitId> resource_to_unit_;  // by arch NodeId
  mutable std::size_t units_built_clusters_ = 0;
  mutable bool units_dirty_ = true;

  // Lazily built compiled index (mutable cache).  Guarded by a mutex so
  // concurrent readers (parallel explore workers) can share one instance;
  // the version/count snapshot detects staleness after mutations.
  mutable std::mutex compiled_mutex_;
  mutable std::unique_ptr<CompiledSpec> compiled_;
  mutable std::uint64_t compiled_problem_version_ = 0;
  mutable std::uint64_t compiled_architecture_version_ = 0;
  mutable std::size_t compiled_mapping_count_ = 0;
};

}  // namespace sdf
