// Minimal leveled logger.
//
// The exploration algorithm can log its pruning decisions at `kDebug`; the
// default level is `kWarn` so library users see nothing unless they opt in.
#pragma once

#include <string>

namespace sdf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits `message` to stderr if `level` passes the threshold.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace sdf
