// A small work-stealing thread pool.
//
// Built for the parallel EXPLORE engine: a band of expensive, independent
// candidate evaluations is fanned out with `parallel_for`, whose iterations
// vary wildly in cost (a dominance-filtered candidate returns in
// microseconds, a binding solve can take milliseconds).  Each worker owns a
// deque; it pops its own work LIFO (cache-warm) and steals FIFO from the
// busiest end of its siblings when it runs dry, so long-running iterations
// do not strand queued work behind them.
//
// Exception safety: a throwing task never deadlocks or leaks the pool.  The
// worker catches the exception, keeps draining, and the first captured
// error is surfaced as a `Status` from `wait_idle()` / `parallel_for()` —
// remaining tasks still run (expected-failure paths in the library use
// Result<T>; an exception here is exceptional, e.g. an injected fault or
// bad_alloc, and the caller decides how to wind down).
//
// The pool is deliberately minimal: no futures, no task graph, no
// priorities.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace sdf {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means one per hardware thread.
  explicit ThreadPool(std::size_t workers = 0);
  /// Drains remaining work, then joins all workers.  A pending task error
  /// that was never collected is logged and dropped (destructors cannot
  /// return a Status).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues one task.  Callable from any thread, including workers.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  The calling thread
  /// helps execute queued work while it waits instead of idling.  Returns
  /// the first error any task threw since the last collection (the error
  /// slot is cleared), or Ok.
  [[nodiscard]] Status wait_idle();

  /// Runs `fn(0) .. fn(n-1)` across the pool and blocks until all complete.
  /// Iterations are independent; no ordering is guaranteed.  A throwing
  /// iteration does not stop the others; the first error is returned.
  [[nodiscard]] Status parallel_for(std::size_t n,
                                    const std::function<void(std::size_t)>& fn);

  /// `std::thread::hardware_concurrency()` with a sane floor of 1.
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  /// Pops from `self`'s back (LIFO) or steals from another queue's front
  /// (FIFO).  Returns an empty function when no work is available.
  std::function<void()> take_task(std::size_t self);
  void worker_loop(std::size_t index);
  bool run_one(std::size_t self);  ///< executes one task if available
  /// Swaps out the first captured task error and renders it as a Status.
  [[nodiscard]] Status collect_error();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex idle_mu_;
  std::condition_variable work_cv_;   ///< wakes sleeping workers
  std::condition_variable idle_cv_;   ///< wakes wait_idle()
  std::size_t in_flight_ = 0;         ///< submitted but not finished
  std::size_t queued_ = 0;            ///< sitting in a deque, not yet taken
  std::size_t next_queue_ = 0;        ///< round-robin for external submits
  bool stop_ = false;
  std::exception_ptr first_error_;    ///< first uncaught task exception
};

}  // namespace sdf
