#include "util/flags.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace sdf {

void Flags::define(std::string name, std::string default_value,
                   std::string help) {
  defs_[name] = Definition{std::move(default_value), std::move(help), false};
}

void Flags::define_bool(std::string name, bool default_value,
                        std::string help) {
  defs_[name] =
      Definition{default_value ? "true" : "false", std::move(help), true};
}

Status Flags::parse(const std::vector<std::string>& args) {
  values_.clear();
  positional_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (const std::size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }

    // --no-foo for booleans.
    if (!have_value && starts_with(name, "no-")) {
      const std::string positive = name.substr(3);
      const auto it = defs_.find(positive);
      if (it != defs_.end() && it->second.is_bool) {
        values_[positive] = "false";
        continue;
      }
    }

    const auto it = defs_.find(name);
    if (it == defs_.end()) return Error{"unknown flag --" + name};
    if (it->second.is_bool) {
      values_[name] = have_value ? value : "true";
      continue;
    }
    if (!have_value) {
      if (i + 1 >= args.size())
        return Error{"flag --" + name + " expects a value"};
      value = args[++i];
    }
    values_[name] = value;
  }
  return Status::Ok();
}

const std::string& Flags::get(const std::string& name) const {
  const auto v = values_.find(name);
  if (v != values_.end()) return v->second;
  const auto d = defs_.find(name);
  SDF_CHECK(d != defs_.end(), "undefined flag queried");
  return d->second.default_value;
}

bool Flags::get_bool(const std::string& name) const {
  const std::string& v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

double Flags::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

long Flags::get_int(const std::string& name) const {
  return std::strtol(get(name).c_str(), nullptr, 10);
}

std::string Flags::usage() const {
  std::string out;
  for (const auto& [name, def] : defs_) {
    out += "  --" + name + " (default: " + def.default_value + ")";
    if (!def.help.empty()) out += "  " + def.help;
    out += '\n';
  }
  return out;
}

}  // namespace sdf
