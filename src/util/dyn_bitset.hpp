// Dynamic bitset tuned for allocation/activation sets.
//
// Resource allocations (Def. 2 of the paper) and cluster-activation sets are
// subsets of a small, dense universe (all architecture resources, all
// clusters).  `DynBitset` stores such subsets in packed 64-bit words and
// provides the set algebra the exploration algorithm needs: union,
// intersection, subset tests, population count, and iteration over members.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sdf {

class DynBitset {
 public:
  DynBitset() = default;
  /// Creates a bitset over a universe of `size` elements, all unset.
  explicit DynBitset(std::size_t size);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;
  /// True iff no bit is set.
  [[nodiscard]] bool none() const;
  /// True iff at least one bit is set.
  [[nodiscard]] bool any() const { return !none(); }

  [[nodiscard]] bool test(std::size_t pos) const;
  void set(std::size_t pos, bool value = true);
  void reset(std::size_t pos) { set(pos, false); }
  void clear();

  /// Grows the universe to `size` elements (new bits unset).  Shrinking is
  /// not supported.
  void resize(std::size_t size);

  DynBitset& operator|=(const DynBitset& other);
  DynBitset& operator&=(const DynBitset& other);
  DynBitset& operator-=(const DynBitset& other);  ///< set difference

  friend DynBitset operator|(DynBitset a, const DynBitset& b) { return a |= b; }
  friend DynBitset operator&(DynBitset a, const DynBitset& b) { return a &= b; }
  friend DynBitset operator-(DynBitset a, const DynBitset& b) { return a -= b; }

  bool operator==(const DynBitset& other) const;

  /// True iff every bit set in *this is also set in `other`.
  [[nodiscard]] bool is_subset_of(const DynBitset& other) const;
  /// True iff *this and `other` share at least one set bit.
  [[nodiscard]] bool intersects(const DynBitset& other) const;
  /// True iff some bit is set in all three of `a`, `b` and `c`; the
  /// word-wise equivalent of `(a & b & c).any()` without the temporaries.
  [[nodiscard]] static bool intersects(const DynBitset& a, const DynBitset& b,
                                       const DynBitset& c);

  /// Index of the first set bit at or after `from`, or `npos` if none.
  [[nodiscard]] std::size_t find_first(std::size_t from = 0) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> members() const;

  /// Calls `fn(pos)` for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t p = find_first(); p != npos; p = find_first(p + 1)) fn(p);
  }

  /// "{0,3,7}"-style rendering, for logs and test failure messages.
  [[nodiscard]] std::string to_string() const;

  /// FNV-style hash over the words, for use in unordered containers.
  [[nodiscard]] std::size_t hash() const;

 private:
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }
  void check_compatible(const DynBitset& other) const;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace sdf

namespace std {
template <>
struct hash<sdf::DynBitset> {
  size_t operator()(const sdf::DynBitset& b) const noexcept { return b.hash(); }
};
}  // namespace std
