// Dynamic bitset tuned for allocation/activation sets.
//
// Resource allocations (Def. 2 of the paper) and cluster-activation sets are
// subsets of a small, dense universe (all architecture resources, all
// clusters).  `DynBitset` stores such subsets in packed 64-bit words and
// provides the set algebra the exploration algorithm needs: union,
// intersection, subset tests, population count, and iteration over members.
//
// Every hot operation is defined inline here on top of the word-parallel
// primitives in util/bitset_kernels.hpp, so a call site like the solver's
// candidate filter or `CompiledSpec::comm_reachable` compiles down to the
// kernel loop itself — no cross-TU call, no per-bit branch, no allocation.
// Cold paths (resize, rendering) stay in dyn_bitset.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bitset_kernels.hpp"
#include "util/status.hpp"

namespace sdf {

class DynBitset {
 public:
  DynBitset() = default;
  /// Creates a bitset over a universe of `size` elements, all unset.
  explicit DynBitset(std::size_t size)
      : words_(words_for(size), 0), size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// The packed words, for kernels and benches layered on top.  Bits at or
  /// beyond `size()` in the trailing word are always zero.
  [[nodiscard]] std::span<const std::uint64_t> words() const { return words_; }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const {
    return bitkernel::popcount_words(words_.data(), words_.size());
  }
  /// True iff no bit is set.
  [[nodiscard]] bool none() const {
    return !bitkernel::any_words(words_.data(), words_.size());
  }
  /// True iff at least one bit is set.
  [[nodiscard]] bool any() const { return !none(); }

  [[nodiscard]] bool test(std::size_t pos) const {
    assert(pos < size_);
    return (words_[pos / kBits] >> (pos % kBits)) & 1u;
  }
  void set(std::size_t pos, bool value = true) {
    assert(pos < size_);
    const std::uint64_t mask = std::uint64_t{1} << (pos % kBits);
    if (value) {
      words_[pos / kBits] |= mask;
    } else {
      words_[pos / kBits] &= ~mask;
    }
  }
  void reset(std::size_t pos) { set(pos, false); }
  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// Grows the universe to `size` elements (new bits unset).  Shrinking is
  /// not supported.
  void resize(std::size_t size);

  DynBitset& operator|=(const DynBitset& other) {
    check_compatible(other);
    bitkernel::or_words(words_.data(), other.words_.data(), words_.size());
    return *this;
  }
  DynBitset& operator&=(const DynBitset& other) {
    check_compatible(other);
    bitkernel::and_words(words_.data(), other.words_.data(), words_.size());
    return *this;
  }
  DynBitset& operator-=(const DynBitset& other) {  ///< set difference
    check_compatible(other);
    bitkernel::andnot_words(words_.data(), other.words_.data(), words_.size());
    return *this;
  }

  friend DynBitset operator|(DynBitset a, const DynBitset& b) { return a |= b; }
  friend DynBitset operator&(DynBitset a, const DynBitset& b) { return a &= b; }
  friend DynBitset operator-(DynBitset a, const DynBitset& b) { return a -= b; }

  /// out = *this & ~other, reusing `out`'s storage (no allocation once its
  /// universe matches).  The explicit-destination form of `operator-`.
  void and_not_into(const DynBitset& other, DynBitset& out) const {
    check_compatible(other);
    if (out.size_ != size_) out = DynBitset(size_);
    bitkernel::andnot_into_words(words_.data(), other.words_.data(),
                                 out.words_.data(), words_.size());
  }

  bool operator==(const DynBitset& other) const {
    return size_ == other.size_ &&
           bitkernel::equal_words(words_.data(), other.words_.data(),
                                  words_.size());
  }

  /// True iff every bit set in *this is also set in `other`.
  [[nodiscard]] bool is_subset_of(const DynBitset& other) const {
    check_compatible(other);
    return bitkernel::subset_words(words_.data(), other.words_.data(),
                                   words_.size());
  }
  /// True iff *this and `other` share at least one set bit.
  [[nodiscard]] bool intersects(const DynBitset& other) const {
    check_compatible(other);
    return bitkernel::intersects_words(words_.data(), other.words_.data(),
                                       words_.size());
  }
  /// True iff some bit is set in all three of `a`, `b` and `c`; the
  /// word-wise equivalent of `(a & b & c).any()` without the temporaries.
  [[nodiscard]] static bool intersects(const DynBitset& a, const DynBitset& b,
                                       const DynBitset& c) {
    a.check_compatible(b);
    a.check_compatible(c);
    return bitkernel::intersects3_words(a.words_.data(), b.words_.data(),
                                        c.words_.data(), a.words_.size());
  }
  /// Number of bits set in both *this and `other`, without a temporary.
  [[nodiscard]] std::size_t intersect_count(const DynBitset& other) const {
    check_compatible(other);
    return bitkernel::intersect_count_words(words_.data(), other.words_.data(),
                                            words_.size());
  }

  /// Index of the first set bit at or after `from`, or `npos` if none.
  [[nodiscard]] std::size_t find_first(std::size_t from = 0) const {
    if (from >= size_) return npos;
    std::size_t wi = from / kBits;
    const std::uint64_t head =
        words_[wi] & (~std::uint64_t{0} << (from % kBits));
    if (head != 0)
      return wi * kBits + static_cast<std::size_t>(std::countr_zero(head));
    wi = bitkernel::find_nonzero_word(words_.data(), words_.size(), wi + 1);
    if (wi == words_.size()) return npos;
    return wi * kBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
  }
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> members() const;

  /// Calls `fn(pos)` for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t p = find_first(); p != npos; p = find_first(p + 1)) fn(p);
  }

  /// "{0,3,7}"-style rendering, for logs and test failure messages.
  [[nodiscard]] std::string to_string() const;

  /// FNV-style hash over the words, for use in unordered containers.
  [[nodiscard]] std::size_t hash() const;

 private:
  static constexpr std::size_t kBits = 64;
  static std::size_t words_for(std::size_t size) {
    return (size + kBits - 1) / kBits;
  }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }
  void check_compatible(const DynBitset& other) const {
    SDF_CHECK(size_ == other.size_, "DynBitset size mismatch");
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace sdf

namespace std {
template <>
struct hash<sdf::DynBitset> {
  size_t operator()(const sdf::DynBitset& b) const noexcept { return b.hash(); }
};
}  // namespace std
