// Minimal JSON value, parser and writer.
//
// Specification graphs are serialized to a plain JSON schema (see
// `spec/spec_io.hpp`).  This is a self-contained implementation covering the
// JSON subset the library emits: null, bool, finite numbers, strings with
// standard escapes, arrays and objects.  Object key order is preserved so
// serialized models diff cleanly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace sdf {

class Json;
struct JsonLimits;  // util/json_stream.hpp

using JsonArray = std::vector<Json>;
/// Insertion-ordered object representation.
using JsonObject = std::vector<std::pair<std::string, Json>>;

/// A JSON document node.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}         // NOLINT
  Json(bool b) : value_(b) {}                        // NOLINT
  Json(double d) : value_(d) {}                      // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}    // NOLINT
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(std::size_t i) : value_(static_cast<double>(i)) {}   // NOLINT
  Json(const char* s) : value_(std::string(s)) {}    // NOLINT
  Json(std::string s) : value_(std::move(s)) {}      // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}        // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}       // NOLINT

  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type() == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; precondition: matching `type()`.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(as_number());
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const JsonArray& as_array() const {
    return std::get<JsonArray>(value_);
  }
  [[nodiscard]] JsonArray& as_array() { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const {
    return std::get<JsonObject>(value_);
  }
  [[nodiscard]] JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object field lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Object field lookup with default.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;

  /// Appends/overwrites a field on an object node.
  void set(std::string key, Json value);

  bool operator==(const Json& other) const { return value_ == other.value_; }

  /// Serializes; `indent < 0` yields compact output, otherwise pretty-printed
  /// with the given indent width.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Thin shim over `JsonStreamParser` (util/json_stream.hpp) with the
  /// default limits: depth-capped but otherwise unbounded.
  [[nodiscard]] static Result<Json> parse(std::string_view text);
  /// Same, with explicit resource caps (see `JsonLimits`).
  [[nodiscard]] static Result<Json> parse(std::string_view text,
                                          const JsonLimits& limits);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace sdf
