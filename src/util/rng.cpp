#include "util/rng.hpp"

#include <cassert>

namespace sdf {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection: accept only the unbiased range.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : uniform(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform_double();
}

bool Rng::chance(double p) { return uniform_double() < p; }

}  // namespace sdf
