// Run budgets and cooperative cancellation for anytime exploration.
//
// The binding problem at the heart of EXPLORE is NP-complete, so a
// production run must survive inputs it cannot finish.  A `RunBudget`
// bounds a run three ways — wall-clock deadline, total binding-solver
// search nodes, and evaluated candidate allocations — and carries a
// `CancelToken` another thread can trip at any time.  Engines construct
// one `BudgetTracker` per run and consult it cooperatively: once per
// candidate allocation on the driving thread and once per solver node
// inside the backtracking loop (workers included; all counters are
// atomic).  Exhaustion is *sticky*: the first limit to trip records the
// `StopReason` and every later check fails fast, so a tripped run winds
// down at every granularity without ever blocking.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace sdf {

/// Why a run stopped early; `kCompleted` means the budget never interfered.
enum class StopReason : std::uint8_t {
  kCompleted = 0,
  kDeadline,      ///< wall-clock deadline expired
  kSolverNodes,   ///< solver-node budget exhausted
  kAllocations,   ///< candidate-allocation budget exhausted
  kCancelled,     ///< CancelToken tripped
  kWorkerError,   ///< a worker task failed (see ExploreResult::status)
};

[[nodiscard]] const char* stop_reason_name(StopReason reason);

/// Shared-state cancellation handle.  Copies observe the same flag, so the
/// caller can keep one copy and hand another to a long-running engine;
/// `request_cancel()` is safe from any thread (e.g. a signal-watching or
/// UI thread) and is permanent for the lifetime of the token's state.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const { flag_->store(true, std::memory_order_release); }
  [[nodiscard]] bool cancel_requested() const {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Limits for one exploration run.  Zero means unlimited; the default
/// budget never interrupts anything.
struct RunBudget {
  /// Wall-clock deadline, measured from `BudgetTracker` construction.
  double deadline_seconds = 0.0;
  /// Total binding-solver decision nodes across every solver call.
  std::uint64_t max_solver_nodes = 0;
  /// Candidate allocations drained from the enumeration stream.
  std::uint64_t max_allocations = 0;
  /// Cooperative cancellation; checked at the same points as the limits.
  CancelToken cancel;

  [[nodiscard]] bool limited() const {
    return deadline_seconds > 0.0 || max_solver_nodes != 0 ||
           max_allocations != 0;
  }
};

/// Live accounting of one run against its `RunBudget`.  Thread-safe: the
/// solver charges nodes from worker threads while the driving thread
/// charges allocations.  All charge/check calls return false once any
/// limit has tripped (sticky).
class BudgetTracker {
 public:
  explicit BudgetTracker(const RunBudget& budget);

  /// Charges one solver decision node.  O(1): an atomic increment plus a
  /// relaxed flag load; the deadline clock is sampled every 1024 nodes.
  bool charge_solver_node();

  /// Charges one candidate allocation (driving thread, once per candidate).
  /// Also samples the deadline/cancellation state.
  bool charge_allocation();

  /// Re-checks deadline and cancellation without charging anything.
  bool check();

  [[nodiscard]] bool exhausted() const {
    return reason_.load(std::memory_order_acquire) != StopReason::kCompleted;
  }
  /// First limit that tripped; `kCompleted` while none has.
  [[nodiscard]] StopReason reason() const {
    return reason_.load(std::memory_order_acquire);
  }
  /// Marks the run stopped because a worker task failed.
  void note_worker_error() { trip(StopReason::kWorkerError); }

  /// True while the allocation cap (if any) still has headroom.  Unlike
  /// `charge_allocation` this neither charges nor trips: band-based engines
  /// probe the cap *before* drawing the candidate that would exceed it, so
  /// the already-charged band can still be evaluated (a tripped tracker is
  /// sticky and would abort every in-flight solve).
  [[nodiscard]] bool allocation_budget_left() const {
    return max_allocations_ == 0 ||
           allocations_.load(std::memory_order_relaxed) < max_allocations_;
  }
  /// Records the allocation-cap stop detected via `allocation_budget_left`
  /// (after the in-flight band has been merged).
  void note_allocations_exhausted() { trip(StopReason::kAllocations); }

  [[nodiscard]] std::uint64_t solver_nodes_charged() const {
    return nodes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t allocations_charged() const {
    return allocations_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Records the first stop reason (later trips keep the original) and
  /// returns false for tail-calling from the charge methods.
  bool trip(StopReason reason);
  bool deadline_or_cancel_tripped();

  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::uint64_t max_nodes_ = 0;
  std::uint64_t max_allocations_ = 0;
  CancelToken cancel_;

  std::atomic<std::uint64_t> nodes_{0};
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<StopReason> reason_{StopReason::kCompleted};
};

}  // namespace sdf
