// Word-parallel bitset kernels: the raw-speed layer under `DynBitset`.
//
// Every set-algebra query the exploration hot path issues — activatability
// intersections, `comm_reachable` three-way tests, candidate-domain subset
// checks — reduces to a handful of primitives over packed 64-bit words.
// This header implements them as branch-light, allocation-free loops that
// the compiler can inline straight into the call site:
//
//   * predicates (`intersects`, `subset`, `equal`, `any`) consume four
//     words per iteration and test once per block instead of once per
//     word, so the inner loop carries no data-dependent branch;
//   * reductions (`popcount`, `intersect_count`) are pure unrolled
//     popcount sums, and
//   * transforms (`or`/`and`/`andnot`, `andnot_into`) are straight-line
//     stores the auto-vectorizer handles on its own.
//
// When the translation unit is compiled with AVX2 (`-mavx2`, see the
// SDF_AVX2 CMake option) the predicates switch to 256-bit loads with
// `vptest`-style reductions under `#ifdef`; the portable u64 path is the
// reference semantics and stays the default build.  Both paths are checked
// word-for-word against a naive per-bit model in tests/dyn_bitset_test.cpp
// and raced against each other in bench/bench_kernels.cpp.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) && !defined(SDF_NO_SIMD)
#include <immintrin.h>
#define SDF_BITSET_AVX2 1
#endif

namespace sdf::bitkernel {

/// Compile-time marker for benches and logs: which path this build uses.
#if defined(SDF_BITSET_AVX2)
inline constexpr const char* kPath = "avx2";
#else
inline constexpr const char* kPath = "portable-u64";
#endif

// ---- reductions ------------------------------------------------------------

/// Population count over `n` words.
[[nodiscard]] inline std::size_t popcount_words(const std::uint64_t* w,
                                                std::size_t n) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(std::popcount(w[i + 0]));
    c1 += static_cast<std::size_t>(std::popcount(w[i + 1]));
    c2 += static_cast<std::size_t>(std::popcount(w[i + 2]));
    c3 += static_cast<std::size_t>(std::popcount(w[i + 3]));
  }
  for (; i < n; ++i) c0 += static_cast<std::size_t>(std::popcount(w[i]));
  return c0 + c1 + c2 + c3;
}

/// Population count of the intersection `a & b` without a temporary.
[[nodiscard]] inline std::size_t intersect_count_words(const std::uint64_t* a,
                                                       const std::uint64_t* b,
                                                       std::size_t n) {
  std::size_t c0 = 0, c1 = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
    c1 += static_cast<std::size_t>(std::popcount(a[i + 1] & b[i + 1]));
  }
  if (i < n) c0 += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return c0 + c1;
}

// ---- predicates ------------------------------------------------------------

/// True iff any word is non-zero.
[[nodiscard]] inline bool any_words(const std::uint64_t* w, std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = (w[i] | w[i + 1]) | (w[i + 2] | w[i + 3]);
    if (acc != 0) return true;
  }
  acc = 0;
  for (; i < n; ++i) acc |= w[i];
  return acc != 0;
}

/// True iff `a & b` is non-empty.
[[nodiscard]] inline bool intersects_words(const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::size_t n) {
  std::size_t i = 0;
#if defined(SDF_BITSET_AVX2)
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
#else
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t acc = (a[i] & b[i]) | (a[i + 1] & b[i + 1]) |
                              (a[i + 2] & b[i + 2]) | (a[i + 3] & b[i + 3]);
    if (acc != 0) return true;
  }
#endif
  std::uint64_t acc = 0;
  for (; i < n; ++i) acc |= a[i] & b[i];
  return acc != 0;
}

/// True iff `a & b & c` is non-empty — the `comm_reachable` kernel:
/// the word-wise equivalent of `(a & b & c).any()` without temporaries.
[[nodiscard]] inline bool intersects3_words(const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            const std::uint64_t* c,
                                            std::size_t n) {
  std::size_t i = 0;
#if defined(SDF_BITSET_AVX2)
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    if (!_mm256_testz_si256(_mm256_and_si256(va, vb), vc)) return true;
  }
#else
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t acc =
        (a[i] & b[i] & c[i]) | (a[i + 1] & b[i + 1] & c[i + 1]) |
        (a[i + 2] & b[i + 2] & c[i + 2]) | (a[i + 3] & b[i + 3] & c[i + 3]);
    if (acc != 0) return true;
  }
#endif
  std::uint64_t acc = 0;
  for (; i < n; ++i) acc |= a[i] & b[i] & c[i];
  return acc != 0;
}

/// True iff `a ⊆ b`, i.e. `a & ~b` is empty.
[[nodiscard]] inline bool subset_words(const std::uint64_t* a,
                                       const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
#if defined(SDF_BITSET_AVX2)
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // CF is set iff (~b & a) == 0, i.e. a ⊆ b.
    if (!_mm256_testc_si256(vb, va)) return false;
  }
#else
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t acc = (a[i] & ~b[i]) | (a[i + 1] & ~b[i + 1]) |
                              (a[i + 2] & ~b[i + 2]) | (a[i + 3] & ~b[i + 3]);
    if (acc != 0) return false;
  }
#endif
  std::uint64_t acc = 0;
  for (; i < n; ++i) acc |= a[i] & ~b[i];
  return acc == 0;
}

/// True iff the word arrays are identical.
[[nodiscard]] inline bool equal_words(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = (a[i] ^ b[i]) | (a[i + 1] ^ b[i + 1]) | (a[i + 2] ^ b[i + 2]) |
          (a[i + 3] ^ b[i + 3]);
    if (acc != 0) return false;
  }
  acc = 0;
  for (; i < n; ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

// ---- transforms ------------------------------------------------------------

inline void or_words(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

inline void and_words(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

/// dst &= ~src (set difference in place).
inline void andnot_words(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

/// dst = a & ~b, the out-of-place difference (`and_not_into`).
inline void andnot_into_words(const std::uint64_t* a, const std::uint64_t* b,
                              std::uint64_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
}

// ---- scans -----------------------------------------------------------------

/// Index of the first non-zero word at or after `from`, or `n` if none.
[[nodiscard]] inline std::size_t find_nonzero_word(const std::uint64_t* w,
                                                   std::size_t n,
                                                   std::size_t from) {
  for (std::size_t i = from; i < n; ++i)
    if (w[i] != 0) return i;
  return n;
}

}  // namespace sdf::bitkernel
