// Chunked byte sources for streaming ingestion.
//
// `ByteReader` is the minimal pull interface `spec_from_stream` and the
// checkpoint loader consume: repeated `read()` calls fill a caller buffer
// until 0 is returned (end of input) or an error is reported.  Adapters
// exist for `std::istream` (files, stdin, FIFOs) and for in-memory views
// with a configurable chunk size — the latter is what the chunk-size sweep
// tests drive to prove byte-split independence.
#pragma once

#include <cstddef>
#include <istream>
#include <string_view>

#include "util/status.hpp"

namespace sdf {

/// Abstract chunked byte source.
class ByteReader {
 public:
  virtual ~ByteReader() = default;

  /// Reads up to `capacity` bytes into `out`.  Returns the number of bytes
  /// produced; 0 means end of input.  Short reads are allowed anywhere.
  [[nodiscard]] virtual Result<std::size_t> read(char* out,
                                                 std::size_t capacity) = 0;
};

/// Adapts any `std::istream` (ifstream, cin, stringstream).  Distinguishes
/// clean EOF from a stream-level read failure (e.g. an I/O error on a
/// FIFO): the latter surfaces as an error, not as silent truncation.
class IstreamByteReader final : public ByteReader {
 public:
  explicit IstreamByteReader(std::istream& in) : in_(in) {}

  [[nodiscard]] Result<std::size_t> read(char* out,
                                         std::size_t capacity) override {
    if (capacity == 0 || in_.eof()) return std::size_t{0};
    in_.read(out, static_cast<std::streamsize>(capacity));
    const std::size_t got = static_cast<std::size_t>(in_.gcount());
    if (in_.bad()) return Error{"I/O error while reading input"};
    return got;
  }

 private:
  std::istream& in_;
};

/// Serves an in-memory buffer in fixed-size chunks.  Chunk size 0 means
/// "everything in one read".  Tests use small sizes (1..64) to exercise
/// every token-splitting boundary in the streaming parser.
class StringViewByteReader final : public ByteReader {
 public:
  explicit StringViewByteReader(std::string_view data,
                                std::size_t chunk_size = 0)
      : data_(data), chunk_(chunk_size == 0 ? data.size() : chunk_size) {}

  [[nodiscard]] Result<std::size_t> read(char* out,
                                         std::size_t capacity) override {
    std::size_t n = data_.size() - pos_;
    if (n > chunk_) n = chunk_;
    if (n > capacity) n = capacity;
    data_.copy(out, n, pos_);
    pos_ += n;
    return n;
  }

 private:
  std::string_view data_;
  std::size_t chunk_;
  std::size_t pos_ = 0;
};

}  // namespace sdf
