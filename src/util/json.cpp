#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/json_stream.hpp"
#include "util/strings.hpp"

namespace sdf {

Json::Type Json::type() const {
  return static_cast<Type>(value_.index());
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object())
    if (k == key) return &v;
  return nullptr;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* j = find(key);
  return (j && j->is_number()) ? j->as_number() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* j = find(key);
  return (j && j->is_string()) ? j->as_string() : std::move(fallback);
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* j = find(key);
  return (j && j->is_bool()) ? j->as_bool() : fallback;
}

void Json::set(std::string key, Json value) {
  if (!is_object()) value_ = JsonObject{};
  for (auto& [k, v] : as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  as_object().emplace_back(std::move(key), std::move(value));
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double d) {
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::fabs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
  } else {
    out += format_double(d, 12);
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += as_bool() ? "true" : "false"; break;
    case Type::kNumber: number_into(out, as_number()); break;
    case Type::kString: escape_into(out, as_string()); break;
    case Type::kArray: {
      const auto& arr = as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        arr[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_into(out, obj[i].first);
        out += indent < 0 ? ":" : ": ";
        obj[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Result<Json> Json::parse(std::string_view text) {
  return parse(text, JsonLimits{});
}

Result<Json> Json::parse(std::string_view text, const JsonLimits& limits) {
  JsonDomBuilder builder;
  JsonStreamParser parser(builder, limits);
  if (Status s = parser.feed(text); !s.ok()) return s.error();
  if (Status s = parser.finish(); !s.ok()) return s.error();
  return builder.take();
}

}  // namespace sdf
