#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.hpp"

namespace sdf {

Json::Type Json::type() const {
  return static_cast<Type>(value_.index());
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object())
    if (k == key) return &v;
  return nullptr;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* j = find(key);
  return (j && j->is_number()) ? j->as_number() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* j = find(key);
  return (j && j->is_string()) ? j->as_string() : std::move(fallback);
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* j = find(key);
  return (j && j->is_bool()) ? j->as_bool() : fallback;
}

void Json::set(std::string key, Json value) {
  if (!is_object()) value_ = JsonObject{};
  for (auto& [k, v] : as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  as_object().emplace_back(std::move(key), std::move(value));
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double d) {
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::fabs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
  } else {
    out += format_double(d, 12);
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += as_bool() ? "true" : "false"; break;
    case Type::kNumber: number_into(out, as_number()); break;
    case Type::kString: escape_into(out, as_string()); break;
    case Type::kArray: {
      const auto& arr = as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        arr[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_into(out, obj[i].first);
        out += indent < 0 ? ":" : ": ";
        obj[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  /// Containers deeper than this are rejected: parsing recurses once per
  /// nesting level, so an adversarial "[[[[..." document would otherwise
  /// overflow the stack.  Far above any legitimate specification document.
  static constexpr int kMaxDepth = 256;

  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> run() {
    skip_ws();
    Result<Json> v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  Error fail(const std::string& what) const {
    return Error{strprintf("JSON parse error at offset %zu: %s", pos_,
                           what.c_str())};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{' || c == '[') {
      if (depth_ >= kMaxDepth) return fail("nesting too deep");
      ++depth_;
      Result<Json> v = c == '{' ? parse_object() : parse_array();
      --depth_;
      return v;
    }
    if (c == '"') {
      Result<std::string> s = parse_string();
      if (!s.ok()) return s.error();
      return Json(std::move(s).value());
    }
    if (consume_word("null")) return Json(nullptr);
    if (consume_word("true")) return Json(true);
    if (consume_word("false")) return Json(false);
    return parse_number();
  }

  Result<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    return Json(d);
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return fail("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // UTF-8 encode (BMP only; surrogate pairs are not emitted by the
            // library's own writer).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  Result<Json> parse_array() {
    consume('[');
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      skip_ws();
      Result<Json> v = parse_value();
      if (!v.ok()) return v;
      arr.push_back(std::move(v).value());
      skip_ws();
      if (consume(']')) return Json(std::move(arr));
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  Result<Json> parse_object() {
    consume('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      Result<std::string> key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Result<Json> v = parse_value();
      if (!v.ok()) return v;
      obj.emplace_back(std::move(key).value(), std::move(v).value());
      skip_ws();
      if (consume('}')) return Json(std::move(obj));
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Json> Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace sdf
