#include "util/json_stream.hpp"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "util/strings.hpp"

namespace sdf {
namespace {

/// Number tokens longer than this are rejected outright.  Any finite
/// double is expressible well under this bound; only pathological inputs
/// ("1" followed by a megabyte of zeros) ever reach it.
constexpr std::size_t kMaxNumberBytes = 4096;

bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Characters the number scanner accepts — deliberately the same liberal
/// set as the pre-streaming parser (strtod plus full-token-consumed is the
/// actual validity check).
bool is_number_char(char c) {
  return (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
         c == '+' || c == '-';
}

bool is_word_char(char c) { return c >= 'a' && c <= 'z'; }

/// True when `prefix` could still grow into "null", "true" or "false".
/// The word scanner emits the value as soon as a full word matches (the
/// pre-streaming parser consumed exactly the word and no more, so `nullx`
/// parsed `null` and then failed on the trailing `x` — this reproduces
/// that) and rejects at the first byte that rules every word out.
bool is_word_prefix(const std::string& prefix) {
  constexpr std::string_view kWords[] = {"null", "true", "false"};
  for (std::string_view word : kWords)
    if (word.size() > prefix.size() &&
        word.compare(0, prefix.size(), prefix) == 0)
      return true;
  return false;
}

}  // namespace

JsonStreamParser::JsonStreamParser(JsonEventHandler& handler,
                                   const JsonLimits& limits)
    : handler_(handler), limits_(limits) {
  if (limits_.max_depth < 1) limits_.max_depth = 1;
}

Status JsonStreamParser::fail(std::string what) {
  return fail_at(offset_, std::move(what));
}

Status JsonStreamParser::fail_at(std::uint64_t offset, std::string what) {
  state_ = State::kFailed;
  error_ = strprintf("JSON parse error at offset %llu: %s",
                     static_cast<unsigned long long>(offset), what.c_str());
  return Error{error_};
}

void JsonStreamParser::note_buffered() {
  const std::size_t held = buf_.size() + stack_.size() / 8 + 1;
  if (held > peak_) peak_ = held;
}

Status JsonStreamParser::charge_node() {
  ++nodes_;
  if (limits_.max_nodes != 0 && nodes_ > limits_.max_nodes)
    return fail(strprintf("document exceeds max_nodes (%llu)",
                          static_cast<unsigned long long>(limits_.max_nodes)));
  return Status::Ok();
}

Status JsonStreamParser::value_done() {
  state_ = stack_.empty() ? State::kDone : State::kAfterValue;
  return Status::Ok();
}

Status JsonStreamParser::begin_value(char c) {
  switch (c) {
    case '{':
    case '[': {
      if (static_cast<int>(stack_.size()) >= limits_.max_depth)
        return fail("nesting too deep");
      if (Status s = charge_node(); !s.ok()) return s;
      stack_.push_back(c == '{');
      note_buffered();
      if (Status s = c == '{' ? handler_.on_begin_object()
                              : handler_.on_begin_array();
          !s.ok()) {
        state_ = State::kFailed;
        error_ = s.error().message;
        return s;
      }
      state_ = c == '{' ? State::kObjectFirst : State::kArrayFirst;
      return Status::Ok();
    }
    case '"':
      buf_.clear();
      in_key_ = false;
      token_start_ = offset_;
      state_ = State::kString;
      return Status::Ok();
    default:
      token_start_ = offset_;
      buf_.clear();
      if (is_word_char(c)) {
        buf_ += c;
        state_ = State::kWord;
        return Status::Ok();
      }
      if (is_number_char(c)) {
        buf_ += c;
        state_ = State::kNumber;
        return Status::Ok();
      }
      return fail("invalid value");
  }
}

Status JsonStreamParser::end_word() {
  Status s = Status::Ok();
  if (buf_ == "null") {
    if (s = charge_node(); s.ok()) s = handler_.on_null();
  } else if (buf_ == "true") {
    if (s = charge_node(); s.ok()) s = handler_.on_bool(true);
  } else if (buf_ == "false") {
    if (s = charge_node(); s.ok()) s = handler_.on_bool(false);
  } else {
    return fail_at(token_start_, "invalid value");
  }
  buf_.clear();
  if (!s.ok()) {
    state_ = State::kFailed;
    error_ = s.error().message;
    return s;
  }
  return value_done();
}

Status JsonStreamParser::end_number() {
  char* end = nullptr;
  const double value = std::strtod(buf_.c_str(), &end);
  if (end != buf_.c_str() + buf_.size() || buf_.empty())
    return fail("invalid number");
  if (!std::isfinite(value))
    return fail("number out of range (non-finite)");
  buf_.clear();
  Status s = charge_node();
  if (s.ok()) s = handler_.on_number(value);
  if (!s.ok()) {
    state_ = State::kFailed;
    error_ = s.error().message;
    return s;
  }
  return value_done();
}

Status JsonStreamParser::end_string() {
  Status s = Status::Ok();
  if (in_key_) {
    s = handler_.on_key(std::move(buf_));
  } else {
    if (s = charge_node(); s.ok()) s = handler_.on_string(std::move(buf_));
  }
  buf_.clear();
  if (!s.ok()) {
    state_ = State::kFailed;
    error_ = s.error().message;
    return s;
  }
  if (in_key_) {
    in_key_ = false;
    state_ = State::kObjectColon;
    return Status::Ok();
  }
  return value_done();
}

Status JsonStreamParser::close_container(char c) {
  const bool closing_object = c == '}';
  if (stack_.empty() || stack_.back() != closing_object)
    return fail(closing_object ? "unexpected '}'" : "unexpected ']'");
  stack_.pop_back();
  Status s =
      closing_object ? handler_.on_end_object() : handler_.on_end_array();
  if (!s.ok()) {
    state_ = State::kFailed;
    error_ = s.error().message;
    return s;
  }
  return value_done();
}

Status JsonStreamParser::step(char c) {
  switch (state_) {
    case State::kValue:
      if (is_ws(c)) return Status::Ok();
      return begin_value(c);

    case State::kArrayFirst:
      if (is_ws(c)) return Status::Ok();
      if (c == ']') return close_container(c);
      return begin_value(c);

    case State::kObjectFirst:
      if (is_ws(c)) return Status::Ok();
      if (c == '}') return close_container(c);
      [[fallthrough]];
    case State::kObjectKey:
      if (is_ws(c)) return Status::Ok();
      if (c != '"') return fail("expected string");
      buf_.clear();
      in_key_ = true;
      token_start_ = offset_;
      state_ = State::kString;
      return Status::Ok();

    case State::kObjectColon:
      if (is_ws(c)) return Status::Ok();
      if (c != ':') return fail("expected ':'");
      state_ = State::kValue;
      return Status::Ok();

    case State::kAfterValue:
      if (is_ws(c)) return Status::Ok();
      if (c == ',') {
        state_ = stack_.back() ? State::kObjectKey : State::kValue;
        return Status::Ok();
      }
      if (c == ']' || c == '}') {
        if (stack_.back() != (c == '}'))
          return fail(stack_.back() ? "expected ',' or '}'"
                                    : "expected ',' or ']'");
        return close_container(c);
      }
      return fail(stack_.back() ? "expected ',' or '}'"
                                : "expected ',' or ']'");

    case State::kWord:
      if (is_word_char(c)) {
        buf_ += c;
        if (buf_ == "null" || buf_ == "true" || buf_ == "false")
          return end_word();
        if (!is_word_prefix(buf_)) return fail_at(token_start_, "invalid value");
        return Status::Ok();
      }
      // A non-word byte while a prefix is still pending: the word never
      // completed ("nul", "fals,").
      return fail_at(token_start_, "invalid value");

    case State::kNumber:
      if (is_number_char(c)) {
        buf_ += c;
        note_buffered();
        if (buf_.size() > kMaxNumberBytes)
          return fail("number literal too long");
        return Status::Ok();
      }
      if (Status s = end_number(); !s.ok()) return s;
      return step(c);  // reprocess the terminator

    case State::kString:
      if (c == '"') return end_string();
      if (c == '\\') {
        state_ = State::kStringEscape;
        return Status::Ok();
      }
      // Raw byte (UTF-8 passes through unvalidated, exactly as before;
      // multi-byte sequences split across chunks need no special care).
      buf_ += c;
      note_buffered();
      if (limits_.max_string_bytes != 0 &&
          buf_.size() > limits_.max_string_bytes)
        return fail(strprintf(
            "string exceeds max_string_bytes (%llu)",
            static_cast<unsigned long long>(limits_.max_string_bytes)));
      return Status::Ok();

    case State::kStringEscape:
      switch (c) {
        case '"': buf_ += '"'; break;
        case '\\': buf_ += '\\'; break;
        case '/': buf_ += '/'; break;
        case 'n': buf_ += '\n'; break;
        case 't': buf_ += '\t'; break;
        case 'r': buf_ += '\r'; break;
        case 'b': buf_ += '\b'; break;
        case 'f': buf_ += '\f'; break;
        case 'u':
          unicode_code_ = 0;
          unicode_digits_ = 0;
          state_ = State::kStringUnicode;
          return Status::Ok();
        default:
          return fail("unknown escape");
      }
      note_buffered();
      if (limits_.max_string_bytes != 0 &&
          buf_.size() > limits_.max_string_bytes)
        return fail(strprintf(
            "string exceeds max_string_bytes (%llu)",
            static_cast<unsigned long long>(limits_.max_string_bytes)));
      state_ = State::kString;
      return Status::Ok();

    case State::kStringUnicode: {
      unsigned digit = 0;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
      else return fail("bad \\u escape");
      unicode_code_ = (unicode_code_ << 4) | digit;
      if (++unicode_digits_ < 4) return Status::Ok();
      // UTF-8 encode (BMP only; surrogate pairs are not emitted by the
      // library's own writer — lone surrogates encode as-is, matching the
      // pre-streaming parser byte for byte).
      const unsigned code = unicode_code_;
      if (code < 0x80) {
        buf_ += static_cast<char>(code);
      } else if (code < 0x800) {
        buf_ += static_cast<char>(0xC0 | (code >> 6));
        buf_ += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        buf_ += static_cast<char>(0xE0 | (code >> 12));
        buf_ += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        buf_ += static_cast<char>(0x80 | (code & 0x3F));
      }
      note_buffered();
      if (limits_.max_string_bytes != 0 &&
          buf_.size() > limits_.max_string_bytes)
        return fail(strprintf(
            "string exceeds max_string_bytes (%llu)",
            static_cast<unsigned long long>(limits_.max_string_bytes)));
      state_ = State::kString;
      return Status::Ok();
    }

    case State::kDone:
      if (is_ws(c)) return Status::Ok();
      return fail("trailing characters");

    case State::kFailed:
      return Error{error_};
  }
  return fail("internal parser state corruption");  // unreachable
}

Status JsonStreamParser::feed(std::string_view chunk) {
  if (state_ == State::kFailed) return Error{error_};
  std::size_t i = 0;
  while (i < chunk.size()) {
    if (limits_.max_total_bytes != 0 && offset_ >= limits_.max_total_bytes)
      return fail(strprintf(
          "input exceeds max_total_bytes (%llu)",
          static_cast<unsigned long long>(limits_.max_total_bytes)));
    // Fast path: inside a string, copy a whole run of plain bytes at once.
    if (state_ == State::kString) {
      std::size_t end = i;
      while (end < chunk.size() && chunk[end] != '"' && chunk[end] != '\\')
        ++end;
      std::size_t run = end - i;
      if (limits_.max_total_bytes != 0)
        run = static_cast<std::size_t>(std::min<std::uint64_t>(
            run, limits_.max_total_bytes - offset_));
      // Never buffer past the string cap: append only up to the first
      // overflowing byte, so retained memory stays bounded even when a
      // hostile string arrives in one giant chunk.  Failing at exactly
      // that byte's offset keeps the error identical to the per-byte
      // slow path, whatever the chunking.
      if (limits_.max_string_bytes != 0 &&
          buf_.size() + run > limits_.max_string_bytes) {
        run = static_cast<std::size_t>(limits_.max_string_bytes) + 1 -
              buf_.size();
        buf_.append(chunk.data() + i, run);
        offset_ += run - 1;
        note_buffered();
        return fail(strprintf(
            "string exceeds max_string_bytes (%llu)",
            static_cast<unsigned long long>(limits_.max_string_bytes)));
      }
      if (run > 0) {
        buf_.append(chunk.data() + i, run);
        offset_ += run;
        note_buffered();
        i += run;
        continue;  // re-check the caps before the byte that ended the run
      }
    }
    if (Status s = step(chunk[i]); !s.ok()) return s;
    ++offset_;
    ++i;
  }
  return Status::Ok();
}

Status JsonStreamParser::finish() {
  if (state_ == State::kFailed) return Error{error_};
  // Terminate any in-flight token, then judge the final state.
  if (state_ == State::kWord) {
    if (Status s = end_word(); !s.ok()) return s;
  } else if (state_ == State::kNumber) {
    if (Status s = end_number(); !s.ok()) return s;
  }
  switch (state_) {
    case State::kDone:
      return Status::Ok();
    case State::kString:
    case State::kStringEscape:
      return fail("unterminated string");
    case State::kStringUnicode:
      return fail("bad \\u escape");
    default:
      return fail("unexpected end of input");
  }
}

// ---- JsonDomBuilder ---------------------------------------------------------

Status JsonDomBuilder::add(Json value) {
  if (stack_.empty()) {
    root_ = std::move(value);
    done_ = true;
    return Status::Ok();
  }
  Frame& top = stack_.back();
  if (top.container.is_array()) {
    top.container.as_array().push_back(std::move(value));
  } else {
    // The parser guarantees a key precedes every object member.
    top.container.as_object().emplace_back(std::move(top.pending_key),
                                           std::move(value));
    top.has_key = false;
  }
  return Status::Ok();
}

Status JsonDomBuilder::on_null() { return add(Json(nullptr)); }
Status JsonDomBuilder::on_bool(bool value) { return add(Json(value)); }
Status JsonDomBuilder::on_number(double value) { return add(Json(value)); }
Status JsonDomBuilder::on_string(std::string&& value) {
  return add(Json(std::move(value)));
}

Status JsonDomBuilder::on_key(std::string&& key) {
  Frame& top = stack_.back();
  top.pending_key = std::move(key);
  top.has_key = true;
  return Status::Ok();
}

Status JsonDomBuilder::on_begin_object() {
  stack_.push_back(Frame{Json(JsonObject{}), {}, false});
  return Status::Ok();
}

Status JsonDomBuilder::on_begin_array() {
  stack_.push_back(Frame{Json(JsonArray{}), {}, false});
  return Status::Ok();
}

Status JsonDomBuilder::on_end_object() {
  Json finished = std::move(stack_.back().container);
  stack_.pop_back();
  return add(std::move(finished));
}

Status JsonDomBuilder::on_end_array() { return on_end_object(); }

Json JsonDomBuilder::take() {
  SDF_CHECK(done_ && stack_.empty(),
            "JsonDomBuilder::take before the document completed");
  done_ = false;
  return std::move(root_);
}

// ---- DOM replay -------------------------------------------------------------

Status replay_json_events(const Json& doc, JsonEventHandler& handler) {
  switch (doc.type()) {
    case Json::Type::kNull:
      return handler.on_null();
    case Json::Type::kBool:
      return handler.on_bool(doc.as_bool());
    case Json::Type::kNumber:
      return handler.on_number(doc.as_number());
    case Json::Type::kString:
      return handler.on_string(std::string(doc.as_string()));
    case Json::Type::kArray: {
      if (Status s = handler.on_begin_array(); !s.ok()) return s;
      for (const Json& element : doc.as_array())
        if (Status s = replay_json_events(element, handler); !s.ok()) return s;
      return handler.on_end_array();
    }
    case Json::Type::kObject: {
      if (Status s = handler.on_begin_object(); !s.ok()) return s;
      for (const auto& [key, value] : doc.as_object()) {
        if (Status s = handler.on_key(std::string(key)); !s.ok()) return s;
        if (Status s = replay_json_events(value, handler); !s.ok()) return s;
      }
      return handler.on_end_object();
    }
  }
  return Error{"replay_json_events: corrupt Json value"};  // unreachable
}

}  // namespace sdf
