// Deterministic pseudo-random numbers for generators and baselines.
//
// All stochastic components of the library (the synthetic specification
// generator, the evolutionary baseline explorer) draw from this seeded
// xoshiro256** generator so that every experiment is reproducible from its
// seed alone.
#pragma once

#include <cstdint>
#include <vector>

namespace sdf {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit word.
  std::uint64_t next();

  /// Uniform integer in [0, bound), bound > 0.  Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Bernoulli trial with probability `p`.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container.
  template <typename T>
  std::size_t pick_index(const std::vector<T>& v) {
    return static_cast<std::size_t>(uniform(v.size()));
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace sdf
