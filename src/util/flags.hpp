// Minimal command-line flag parsing for the CLI tool.
//
// Supports `--key=value`, `--key value`, boolean `--key` / `--no-key`, and
// positional arguments; unknown flags are errors so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace sdf {

class Flags {
 public:
  /// Declares a flag with a default; call before parse().
  void define(std::string name, std::string default_value,
              std::string help = "");
  void define_bool(std::string name, bool default_value,
                   std::string help = "");

  /// Parses arguments (no argv[0]); positional arguments are collected in
  /// order.  Fails on unknown or malformed flags.
  [[nodiscard]] Status parse(const std::vector<std::string>& args);

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  /// Numeric value; `fallback` when unparsable.
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// One line per flag: "--name (default: value)  help".
  [[nodiscard]] std::string usage() const;

 private:
  struct Definition {
    std::string default_value;
    std::string help;
    bool is_bool = false;
  };
  std::map<std::string, Definition> defs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sdf
