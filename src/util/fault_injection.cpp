#include "util/fault_injection.hpp"

#ifdef SDF_FAULT_INJECTION

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

namespace sdf {
namespace {

struct ArmedFault {
  FaultKind kind;
  std::uint64_t nth = 0;       // fire on exactly this hit (0 = probabilistic)
  double probability = 0.0;    // probabilistic mode
  std::uint64_t seed = 0;
  unsigned delay_micros = 0;
};

struct SiteState {
  std::atomic<std::uint64_t> hits{0};
  std::vector<ArmedFault> armed;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState, std::less<>> sites;
  // Fast path: when nothing is armed anywhere, hit() only bumps a counter.
  std::atomic<bool> any_armed{false};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives all worker threads
  return *r;
}

/// SplitMix64 of (seed ^ site-hash ^ hit): a uniform 64-bit stream that is
/// identical for identical (seed, site, hit) — the replayability contract.
std::uint64_t mix(std::uint64_t seed, const std::string& site,
                  std::uint64_t hit) {
  std::uint64_t x = seed ^ (std::hash<std::string>{}(site) + hit * 0x9E3779B97F4A7C15ULL);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

[[noreturn]] void fire_throw(const std::string& site, std::uint64_t hit) {
  throw FaultInjectedError("injected fault at site '" + site + "' (hit " +
                           std::to_string(hit) + ")");
}

}  // namespace

void FaultInjector::arm(const char* site, FaultKind kind, std::uint64_t nth,
                        unsigned delay_micros) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ArmedFault f;
  f.kind = kind;
  f.nth = nth;
  f.delay_micros = delay_micros;
  r.sites[site].armed.push_back(f);
  r.any_armed.store(true, std::memory_order_release);
}

void FaultInjector::arm_probabilistic(const char* site, FaultKind kind,
                                      double p, std::uint64_t seed,
                                      unsigned delay_micros) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ArmedFault f;
  f.kind = kind;
  f.probability = p;
  f.seed = seed;
  f.delay_micros = delay_micros;
  r.sites[site].armed.push_back(f);
  r.any_armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  r.any_armed.store(false, std::memory_order_release);
}

std::uint64_t FaultInjector::hits(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0
                             : it->second.hits.load(std::memory_order_relaxed);
}

void FaultInjector::hit(const char* site) {
  Registry& r = registry();
  if (!r.any_armed.load(std::memory_order_acquire)) return;

  // Decide under the lock (the armed list may be edited concurrently), but
  // sleep and throw outside it.
  FaultKind kind{};
  unsigned delay = 0;
  bool fire = false;
  std::uint64_t hit_index = 0;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    SiteState& s = r.sites[site];
    hit_index = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    for (const ArmedFault& f : s.armed) {
      const bool matches =
          f.nth != 0
              ? hit_index == f.nth
              : (static_cast<double>(mix(f.seed, site, hit_index) >> 11) *
                 0x1.0p-53 < f.probability);
      if (matches) {
        fire = true;
        kind = f.kind;
        delay = f.delay_micros;
        break;
      }
    }
  }
  if (!fire) return;
  switch (kind) {
    case FaultKind::kThrow: fire_throw(site, hit_index);
    case FaultKind::kBadAlloc: throw std::bad_alloc();
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
      return;
  }
}

}  // namespace sdf

#endif  // SDF_FAULT_INJECTION
