// Strong integer identifiers.
//
// The hierarchical-graph arena addresses every entity (vertex, interface,
// cluster, edge, port, resource, mapping edge, ...) by a dense index.  Raw
// `std::size_t` indices are easy to mix up across entity kinds; `StrongId`
// makes each kind its own type while keeping the zero-cost dense-index
// representation.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace sdf {

/// A typed wrapper around a dense index.  `Tag` is a phantom type that
/// distinguishes id families (e.g. `NodeId` vs. `ClusterId`); ids of
/// different families do not convert into each other.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  /// Sentinel for "no entity".  Default-constructed ids are invalid.
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}
  constexpr explicit StrongId(std::size_t v)
      : value_(static_cast<value_type>(v)) {}

  /// Dense index value; only meaningful when `valid()`.
  [[nodiscard]] constexpr value_type value() const { return value_; }
  /// Convenience for indexing into std containers.
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  value_type value_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
  if (!id.valid()) return os << "#invalid";
  return os << '#' << id.value();
}

}  // namespace sdf

namespace std {
template <typename Tag>
struct hash<sdf::StrongId<Tag>> {
  size_t operator()(const sdf::StrongId<Tag>& id) const noexcept {
    return std::hash<typename sdf::StrongId<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
