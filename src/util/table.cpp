#include "util/table.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace sdf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SDF_CHECK(!header_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  SDF_CHECK(row.size() == header_.size(), "Table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(width[c] - row[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string sep = "+";
  for (std::size_t c = 0; c < width.size(); ++c) {
    sep.append(width[c] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string Table::to_csv() const {
  auto field = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char c : s) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += field(row[c]);
    }
    out += '\n';
    return out;
  };
  std::string out = line(header_);
  for (const auto& row : rows_) out += line(row);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_ascii();
}

}  // namespace sdf
