// Incremental (push) JSON parsing with hard resource caps.
//
// `JsonStreamParser` accepts a document in arbitrary chunks — `feed()` any
// number of times, then `finish()` — and emits SAX-style events to a
// `JsonEventHandler` as soon as each token completes.  All lexical state
// (strings, escapes, `\uXXXX` sequences, numbers, `null`/`true`/`false`
// words) survives chunk boundaries, so a caller may split the input at
// every single byte and observe the identical event stream.
//
// Resource caps are enforced *while parsing*, not after: a hostile input
// that is small on the wire but explosive in memory (nesting bombs, giant
// strings, megabyte number literals, node floods) is rejected at the first
// byte that exceeds a cap, with the absolute byte offset in the error.
// The parser itself retains only O(max string length + nesting depth)
// bytes between chunks — `peak_buffered_bytes()` exposes the high-water
// mark so tests can pin that bound.
//
// `JsonDomBuilder` is the standard handler that materializes a `Json`
// document; `Json::parse` is a thin shim over it, so every existing caller
// exercises the streaming path.  `replay_json_events` walks an existing
// DOM and re-emits its event stream, letting DOM consumers share one
// schema-reader implementation with true streaming consumers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"
#include "util/status.hpp"

namespace sdf {

/// Hard resource caps enforced during parsing.  Zero means "unlimited" for
/// the byte/node caps; depth is always finite (parsing and DOM teardown
/// would otherwise recurse once per level and overflow the stack).
struct JsonLimits {
  /// Maximum container nesting depth (matches the pre-streaming parser).
  int max_depth = 256;
  /// Total input bytes accepted across all `feed()` calls.
  std::uint64_t max_total_bytes = 0;
  /// Per-token byte cap for strings and object keys (decoded bytes).
  std::uint64_t max_string_bytes = 0;
  /// Total JSON values (scalars + containers; keys not counted).
  std::uint64_t max_nodes = 0;

  /// Caps for untrusted front-door ingestion (specs, checkpoints): far
  /// above any legitimate document, far below what could hurt a server.
  /// 256 MiB of input, 1 MiB per string, 8M nodes, depth 256.
  [[nodiscard]] static JsonLimits ingest_defaults() {
    JsonLimits limits;
    limits.max_total_bytes = 256ull << 20;
    limits.max_string_bytes = 1ull << 20;
    limits.max_nodes = 8ull << 20;
    return limits;
  }
};

/// Receives parse events.  Every callback may veto the parse by returning
/// an error Status; the parser aborts immediately and `feed()`/`finish()`
/// return that error unchanged (no offset prefix — handler errors are
/// domain errors, not syntax errors).
class JsonEventHandler {
 public:
  virtual ~JsonEventHandler() = default;

  virtual Status on_null() = 0;
  virtual Status on_bool(bool value) = 0;
  virtual Status on_number(double value) = 0;
  virtual Status on_string(std::string&& value) = 0;
  /// Object member key (always precedes the member's value events).
  virtual Status on_key(std::string&& key) = 0;
  virtual Status on_begin_object() = 0;
  virtual Status on_end_object() = 0;
  virtual Status on_begin_array() = 0;
  virtual Status on_end_array() = 0;
};

/// The push parser; see file comment.  Single-document: after the
/// top-level value closes only trailing whitespace is accepted.
class JsonStreamParser {
 public:
  explicit JsonStreamParser(JsonEventHandler& handler,
                            const JsonLimits& limits = {});

  /// Consumes the next chunk.  Returns the first error hit (syntax error,
  /// cap violation, or handler veto); after an error the parser is stuck
  /// and every later call returns the same error.
  [[nodiscard]] Status feed(std::string_view chunk);

  /// Declares end of input; validates that the document is complete.
  [[nodiscard]] Status finish();

  /// Total bytes accepted so far (= absolute offset of the next byte).
  [[nodiscard]] std::uint64_t bytes_consumed() const { return offset_; }

  /// High-water mark of bytes the parser retained *between* characters
  /// (partial-token buffer + container stack).  Bounded by
  /// `max_string_bytes` plus `max_depth` regardless of input size — the
  /// cap-violation tests pin this.
  [[nodiscard]] std::size_t peak_buffered_bytes() const { return peak_; }

 private:
  enum class State : std::uint8_t {
    kValue,          // expecting a value
    kArrayFirst,     // just after '[': value or ']'
    kObjectFirst,    // just after '{': key or '}'
    kObjectKey,      // after ',' in an object: key required
    kObjectColon,    // after a key: ':' required
    kAfterValue,     // after a value: ',' / ']' / '}' / end of document
    kWord,           // inside null/true/false
    kNumber,         // inside a number token
    kString,         // inside a string or key body
    kStringEscape,   // just after '\'
    kStringUnicode,  // inside the 4 hex digits of \uXXXX
    kDone,           // document complete; whitespace only
    kFailed,
  };

  Status fail(std::string what);
  Status fail_at(std::uint64_t offset, std::string what);
  [[nodiscard]] Status step(char c);      // feed one character
  [[nodiscard]] Status begin_value(char c);
  [[nodiscard]] Status end_word();
  [[nodiscard]] Status end_number();
  [[nodiscard]] Status end_string();
  [[nodiscard]] Status close_container(char c);
  [[nodiscard]] Status value_done();
  [[nodiscard]] Status charge_node();
  void note_buffered();

  JsonEventHandler& handler_;
  JsonLimits limits_;
  State state_ = State::kValue;
  /// Container stack: one entry per open container, true = object.
  std::vector<bool> stack_;
  /// Partial-token buffer (string/key/number/word bytes seen so far).
  std::string buf_;
  /// True while `buf_` holds an object key rather than a string value.
  bool in_key_ = false;
  /// Pending \uXXXX state: accumulated code point and hex digits seen.
  unsigned unicode_code_ = 0;
  int unicode_digits_ = 0;
  std::uint64_t token_start_ = 0;  ///< absolute offset of current token
  std::uint64_t offset_ = 0;
  std::uint64_t nodes_ = 0;
  std::size_t peak_ = 0;
  std::string error_;  ///< sticky error message (state_ == kFailed)
};

/// Handler that materializes the event stream into a `Json` document.
/// Duplicate keys are preserved in document order, exactly as the
/// pre-streaming parser did.
class JsonDomBuilder : public JsonEventHandler {
 public:
  Status on_null() override;
  Status on_bool(bool value) override;
  Status on_number(double value) override;
  Status on_string(std::string&& value) override;
  Status on_key(std::string&& key) override;
  Status on_begin_object() override;
  Status on_end_object() override;
  Status on_begin_array() override;
  Status on_end_array() override;

  /// The completed document; precondition: the parse finished cleanly.
  [[nodiscard]] Json take();

 private:
  Status add(Json value);

  struct Frame {
    Json container;           // under-construction array or object
    std::string pending_key;  // set between on_key and the member's value
    bool has_key = false;
  };
  std::vector<Frame> stack_;
  Json root_;
  bool done_ = false;
};

/// Walks an existing DOM and emits its event stream (document order,
/// duplicate keys included).  Lets `spec_from_json` share the streaming
/// schema reader.  Depth is bounded by the parse that built `doc`.
[[nodiscard]] Status replay_json_events(const Json& doc,
                                        JsonEventHandler& handler);

}  // namespace sdf
