// Lightweight error propagation.
//
// The library avoids exceptions on expected failure paths (malformed model
// files, infeasible specifications); `Result<T>` carries either a value or a
// human-readable error message.  Programming errors (violated preconditions)
// still use assertions / `SDF_CHECK`.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace sdf {

/// Error payload: a message plus optional context chain.
struct Error {
  std::string message;

  /// Returns a new error with `context` prepended ("context: message").
  [[nodiscard]] Error wrap(const std::string& context) const {
    return Error{context + ": " + message};
  }
};

/// Either a `T` or an `Error`.  Modeled loosely on `std::expected` (C++23),
/// restricted to what the library needs.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Value access; precondition: `ok()`.
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  /// Error access; precondition: `!ok()`.
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Value or `fallback` when this result holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Status Ok() { return Status{}; }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Hard invariant check that survives NDEBUG builds.  Use for conditions
/// whose violation would make later results silently wrong.
#define SDF_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "SDF_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, msg);                                        \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

}  // namespace sdf
