// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sdf {

/// Splits `s` at every occurrence of `sep` (empty fields preserved).
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True iff `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Formats a double without trailing zero noise ("1.5", "2", "0.125").
[[nodiscard]] std::string format_double(double v, int max_decimals = 6);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace sdf
