#include "util/thread_pool.hpp"

#include <utility>

#include "util/fault_injection.hpp"
#include "util/log.hpp"

namespace sdf {
namespace {

constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

// Which pool (if any) the current thread belongs to, and its index there.
// Lets submit() from inside a task go to the submitting worker's own deque.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = kNoWorker;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = hardware_threads();
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  if (Status s = wait_idle(); !s.ok())
    log_warn("thread pool destroyed with uncollected task error: " +
             s.error().message);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++in_flight_;
    ++queued_;
    target = (tl_pool == this) ? tl_index : next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
  idle_cv_.notify_all();  // a helping wait_idle() caller may want this task
}

std::function<void()> ThreadPool::take_task(std::size_t self) {
  auto pop = [](WorkerQueue& q, bool lifo) -> std::function<void()> {
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) return {};
    std::function<void()> task;
    if (lifo) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
    } else {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
    return task;
  };
  auto book = [this](std::function<void()> task) {
    std::lock_guard<std::mutex> lock(idle_mu_);
    --queued_;
    return task;
  };

  // Own deque first, newest task (LIFO: it is the cache-warm one).
  if (self != kNoWorker)
    if (std::function<void()> task = pop(*queues_[self], /*lifo=*/true))
      return book(std::move(task));
  // Steal the oldest task (FIFO) from a sibling.
  const std::size_t n = queues_.size();
  const std::size_t start = self == kNoWorker ? 0 : self + 1;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self) continue;
    if (std::function<void()> task = pop(*queues_[victim], /*lifo=*/false))
      return book(std::move(task));
  }
  return {};
}

bool ThreadPool::run_one(std::size_t self) {
  std::function<void()> task = take_task(self);
  if (!task) return false;
  // The in_flight_ decrement below runs on EVERY path out of the task —
  // a throwing task must never strand wait_idle() or deadlock the pool.
  try {
    SDF_FAULT_POINT("thread_pool.task");
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  bool idle;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle = --in_flight_ == 0;
  }
  if (idle) idle_cv_.notify_all();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_index = index;
  for (;;) {
    if (run_one(index)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    // queued_ may be stale by the time we re-scan the deques (another worker
    // stole first); waking spuriously just loops back to run_one.
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_) return;
  }
}

Status ThreadPool::collect_error() {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    std::swap(err, first_error_);
  }
  if (!err) return Status::Ok();
  try {
    std::rethrow_exception(err);
  } catch (const std::bad_alloc&) {
    return Error{"worker task failed: allocation failure (bad_alloc)"};
  } catch (const std::exception& e) {
    return Error{std::string("worker task failed: ") + e.what()};
  } catch (...) {
    return Error{"worker task failed with a non-standard exception"};
  }
}

Status ThreadPool::wait_idle() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      if (in_flight_ == 0) break;
    }
    // Help: execute queued work instead of blocking the caller's core.
    if (run_one(tl_pool == this ? tl_index : kNoWorker)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock,
                  [this] { return in_flight_ == 0 || queued_ > 0; });
    if (in_flight_ == 0) break;
  }
  return collect_error();
}

Status ThreadPool::parallel_for(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return Status::Ok();
  if (n == 1 || queues_.empty()) {
    // Inline fast path: match the pooled path's exception contract.
    try {
      for (std::size_t i = 0; i < n; ++i) {
        SDF_FAULT_POINT("thread_pool.task");
        fn(i);
      }
    } catch (const std::exception& e) {
      return Error{std::string("worker task failed: ") + e.what()};
    } catch (...) {
      return Error{"worker task failed with a non-standard exception"};
    }
    return Status::Ok();
  }
  for (std::size_t i = 0; i < n; ++i)
    submit([&fn, i] { fn(i); });
  return wait_idle();
}

}  // namespace sdf
