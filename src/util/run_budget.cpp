#include "util/run_budget.hpp"

namespace sdf {

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kSolverNodes: return "solver_nodes";
    case StopReason::kAllocations: return "allocations";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kWorkerError: return "worker_error";
  }
  return "?";
}

BudgetTracker::BudgetTracker(const RunBudget& budget)
    : max_nodes_(budget.max_solver_nodes),
      max_allocations_(budget.max_allocations),
      cancel_(budget.cancel) {
  if (budget.deadline_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       budget.deadline_seconds));
  }
}

bool BudgetTracker::trip(StopReason reason) {
  StopReason expected = StopReason::kCompleted;
  reason_.compare_exchange_strong(expected, reason, std::memory_order_acq_rel,
                                  std::memory_order_acquire);
  return false;
}

bool BudgetTracker::deadline_or_cancel_tripped() {
  if (cancel_.cancel_requested()) return !trip(StopReason::kCancelled);
  if (has_deadline_ && Clock::now() >= deadline_)
    return !trip(StopReason::kDeadline);
  return false;
}

bool BudgetTracker::charge_solver_node() {
  const std::uint64_t n = nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (exhausted()) return false;
  if (max_nodes_ != 0 && n > max_nodes_) return trip(StopReason::kSolverNodes);
  // Sampling the clock / cancel flag every node would dominate the solver's
  // inner loop; once per 1024 nodes bounds the overshoot to microseconds.
  if ((n & 1023u) == 0 && deadline_or_cancel_tripped()) return false;
  return true;
}

bool BudgetTracker::charge_allocation() {
  const std::uint64_t n =
      allocations_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (exhausted()) return false;
  if (max_allocations_ != 0 && n > max_allocations_)
    return trip(StopReason::kAllocations);
  if (deadline_or_cancel_tripped()) return false;
  return true;
}

bool BudgetTracker::check() {
  if (exhausted()) return false;
  return !deadline_or_cancel_tripped();
}

}  // namespace sdf
