#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace sdf {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_double(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", max_decimals, v);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace sdf
