// Deterministic fault-injection harness for robustness testing.
//
// Compiled in only when the `SDF_FAULT_INJECTION` CMake option is ON (the
// production build pays exactly nothing: every injection point expands to
// `((void)0)`).  Test code arms *sites* — short string labels compiled into
// the code under test via `SDF_FAULT_POINT("site")` — to throw an
// exception, simulate an allocation failure (`std::bad_alloc`), or delay
// the calling thread:
//
//   FaultInjector::arm("thread_pool.task", FaultKind::kThrow, /*nth=*/3);
//   ... run the code under test: the 3rd task to start throws ...
//   FaultInjector::disarm_all();
//
// Determinism: `nth` counts hits of that site process-wide (atomically), so
// a single-armed site fires exactly once at a reproducible point in the
// *program order of site hits*.  The probabilistic mode hashes
// (seed, site, hit-index) — same seed, same hit sequence, same faults —
// which makes randomized soak tests replayable from their seed alone.
// All state is internally synchronized; arming from the test thread while
// workers hit sites is safe (and TSan-clean).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace sdf {

/// Thrown by an armed `kThrow` site.
class FaultInjectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

#ifdef SDF_FAULT_INJECTION

enum class FaultKind : std::uint8_t {
  kThrow,     ///< throw FaultInjectedError
  kBadAlloc,  ///< throw std::bad_alloc (simulated allocation failure)
  kDelay,     ///< sleep `delay_micros`, then continue normally
};

class FaultInjector {
 public:
  /// Arms `site` to fire `kind` on its `nth` hit from now (1-based).
  /// `delay_micros` applies to `kDelay` only.  Multiple arms on one site
  /// compose (each fires at its own hit index).
  static void arm(const char* site, FaultKind kind, std::uint64_t nth,
                  unsigned delay_micros = 0);

  /// Arms `site` probabilistically: each hit fires `kind` with probability
  /// `p`, decided by a hash of (seed, site, hit index) — deterministic for
  /// a fixed seed.
  static void arm_probabilistic(const char* site, FaultKind kind, double p,
                                std::uint64_t seed,
                                unsigned delay_micros = 0);

  /// Disarms every site and resets all hit counters.
  static void disarm_all();

  /// Hits of `site` since the last `disarm_all()`.  Counted only while at
  /// least one site is armed (the disarmed fast path skips accounting).
  static std::uint64_t hits(const char* site);

  /// Called by SDF_FAULT_POINT; may throw or sleep per the armed plan.
  static void hit(const char* site);
};

#define SDF_FAULT_POINT(site) ::sdf::FaultInjector::hit(site)

#else

#define SDF_FAULT_POINT(site) ((void)0)

#endif  // SDF_FAULT_INJECTION

}  // namespace sdf
