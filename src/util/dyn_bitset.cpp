#include "util/dyn_bitset.hpp"

#include <bit>
#include <cassert>

#include "util/status.hpp"

namespace sdf {
namespace {
constexpr std::size_t kBits = 64;

std::size_t words_for(std::size_t size) { return (size + kBits - 1) / kBits; }
}  // namespace

DynBitset::DynBitset(std::size_t size)
    : words_(words_for(size), 0), size_(size) {}

std::size_t DynBitset::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynBitset::none() const {
  for (std::uint64_t w : words_)
    if (w != 0) return false;
  return true;
}

bool DynBitset::test(std::size_t pos) const {
  assert(pos < size_);
  return (words_[pos / kBits] >> (pos % kBits)) & 1u;
}

void DynBitset::set(std::size_t pos, bool value) {
  assert(pos < size_);
  const std::uint64_t mask = std::uint64_t{1} << (pos % kBits);
  if (value) {
    words_[pos / kBits] |= mask;
  } else {
    words_[pos / kBits] &= ~mask;
  }
}

void DynBitset::clear() {
  for (auto& w : words_) w = 0;
}

void DynBitset::resize(std::size_t size) {
  SDF_CHECK(size >= size_, "DynBitset::resize cannot shrink");
  words_.resize(words_for(size), 0);
  size_ = size;
}

void DynBitset::check_compatible(const DynBitset& other) const {
  SDF_CHECK(size_ == other.size_, "DynBitset size mismatch");
}

DynBitset& DynBitset::operator|=(const DynBitset& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynBitset& DynBitset::operator-=(const DynBitset& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool DynBitset::operator==(const DynBitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

bool DynBitset::is_subset_of(const DynBitset& other) const {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & ~other.words_[i]) return false;
  return true;
}

bool DynBitset::intersects(const DynBitset& other) const {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & other.words_[i]) return true;
  return false;
}

bool DynBitset::intersects(const DynBitset& a, const DynBitset& b,
                           const DynBitset& c) {
  a.check_compatible(b);
  a.check_compatible(c);
  for (std::size_t i = 0; i < a.words_.size(); ++i)
    if (a.words_[i] & b.words_[i] & c.words_[i]) return true;
  return false;
}

std::size_t DynBitset::find_first(std::size_t from) const {
  if (from >= size_) return npos;
  std::size_t wi = from / kBits;
  std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from % kBits));
  while (true) {
    if (w != 0) {
      const std::size_t pos = wi * kBits +
                              static_cast<std::size_t>(std::countr_zero(w));
      return pos < size_ ? pos : npos;
    }
    if (++wi >= words_.size()) return npos;
    w = words_[wi];
  }
}

std::vector<std::size_t> DynBitset::members() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t p) { out.push_back(p); });
  return out;
}

std::string DynBitset::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](std::size_t p) {
    if (!first) out += ',';
    out += std::to_string(p);
    first = false;
  });
  out += '}';
  return out;
}

std::size_t DynBitset::hash() const {
  std::size_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ull;
  }
  return h ^ size_;
}

}  // namespace sdf
