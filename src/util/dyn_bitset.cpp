// Cold paths of DynBitset; the hot set algebra is inline in the header on
// top of util/bitset_kernels.hpp.
#include "util/dyn_bitset.hpp"

namespace sdf {

void DynBitset::resize(std::size_t size) {
  SDF_CHECK(size >= size_, "DynBitset::resize cannot shrink");
  words_.resize(words_for(size), 0);
  size_ = size;
}

std::vector<std::size_t> DynBitset::members() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t p) { out.push_back(p); });
  return out;
}

std::string DynBitset::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](std::size_t p) {
    if (!first) out += ',';
    out += std::to_string(p);
    first = false;
  });
  out += '}';
  return out;
}

std::size_t DynBitset::hash() const {
  std::size_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ull;
  }
  return h ^ size_;
}

}  // namespace sdf
