// ASCII table / CSV rendering for benchmark and example output.
//
// Every bench binary prints the rows of the paper table / figure series it
// regenerates; `Table` keeps that output aligned and consistent.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sdf {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

  /// Renders with aligned columns, a header separator line, and `| |`
  /// borders.
  [[nodiscard]] std::string to_ascii() const;

  /// Renders as RFC-4180-ish CSV (fields containing separators quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Convenience: writes `to_ascii()` to `os`.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdf
