// Umbrella header: the full public API of the library.
//
// The library reproduces "System Design for Flexibility" (Haubelt, Teich,
// Richter, Ernst; DATE 2002):
//
//   #include "core/sdf.hpp"
//
//   sdf::SpecificationGraph spec = sdf::models::make_settop_spec();
//   sdf::ExploreResult result = sdf::explore(spec);
//   for (const sdf::Implementation& impl : result.front)
//     std::cout << impl.cost << " -> f=" << impl.flexibility << '\n';
//
// Layering (each header is independently includable):
//   util/        ids, bitsets, RNG, JSON, tables
//   graph/       hierarchical graphs (Def. 1), flattening, validation, DOT
//   spec/        specification graphs G_S = (G_P, G_A, E_M), builders, I/O,
//                and the CompiledSpec query index (spec/compiled.hpp)
//   activation/  hierarchical timed activation and timelines (§2)
//   flex/        the flexibility metric (Def. 4) and its estimation (§4)
//   bind/        allocations/bindings (Defs. 2-3), ECAs, the binding solver
//   sched/       utilization estimate (69% rule), exact RM, list scheduling
//   moo/         Pareto fronts and quality indicators
//   explore/     EXPLORE, exhaustive and evolutionary explorers (§4)
//   gen/         synthetic specification generator
//
// Spec queries come in two forms.  `SpecificationGraph` offers convenience
// methods (mappings_of, allocation_cost, comm_reachable, ...) that are thin
// shims over a lazily built, mutation-invalidated `CompiledSpec`; engines
// with a hot loop (flex/bind/explore/lint) instead fetch
// `spec.compiled()` once and query the immutable index directly — every
// function in those layers therefore has a `const CompiledSpec&` overload
// next to the `const SpecificationGraph&` one.
#pragma once

#include "activation/activation_state.hpp"
#include "activation/cover_timeline.hpp"
#include "activation/timeline.hpp"
#include "bind/bind_cache.hpp"
#include "bind/binding.hpp"
#include "bind/eca.hpp"
#include "bind/enumerate.hpp"
#include "bind/implementation.hpp"
#include "bind/solver.hpp"
#include "explore/allocation_enum.hpp"
#include "explore/evolutionary.hpp"
#include "explore/exhaustive.hpp"
#include "explore/explorer.hpp"
#include "explore/incremental.hpp"
#include "explore/parallel_explorer.hpp"
#include "explore/queries.hpp"
#include "explore/report.hpp"
#include "explore/sensitivity.hpp"
#include "explore/uncertain.hpp"
#include "flex/activatability.hpp"
#include "flex/flexibility.hpp"
#include "flex/interchange.hpp"
#include "flex/reduce.hpp"
#include "gen/presets.hpp"
#include "gen/spec_generator.hpp"
#include "graph/dot.hpp"
#include "graph/filter.hpp"
#include "graph/flatten.hpp"
#include "graph/hierarchical_graph.hpp"
#include "graph/traversal.hpp"
#include "graph/validate.hpp"
#include "lint/lint.hpp"
#include "moo/indicators.hpp"
#include "moo/interval.hpp"
#include "moo/knee.hpp"
#include "moo/pareto.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/profile.hpp"
#include "sched/quasi_static.hpp"
#include "sched/reconfig.hpp"
#include "sched/rm.hpp"
#include "sched/utilization.hpp"
#include "spec/attributes.hpp"
#include "spec/builder.hpp"
#include "spec/compiled.hpp"
#include "spec/paper_models.hpp"
#include "spec/spec_dot.hpp"
#include "spec/spec_io.hpp"
#include "spec/specification.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
