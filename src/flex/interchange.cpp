#include "flex/interchange.hpp"

namespace sdf {
namespace {

double count_impl(const HierarchicalGraph& g, ClusterId cluster,
                  const ActivationPredicate& a_plus) {
  const Cluster& c = g.cluster(cluster);
  if (!c.is_root() && !a_plus(cluster)) return 0.0;

  double product = 1.0;
  for (NodeId nid : c.nodes) {
    const Node& n = g.node(nid);
    if (!n.is_interface()) continue;
    double sum = 0.0;
    for (ClusterId sub : n.clusters) sum += count_impl(g, sub, a_plus);
    product *= sum;  // 0 when no refinement is activatable
  }
  return product;
}

}  // namespace

double behavior_count(const HierarchicalGraph& g, ClusterId cluster,
                      const ActivationPredicate& a_plus) {
  return count_impl(g, cluster, a_plus);
}

double behavior_count(const HierarchicalGraph& g,
                      const ActivationPredicate& a_plus) {
  return count_impl(g, g.root(), a_plus);
}

double max_behavior_count(const HierarchicalGraph& g) {
  return behavior_count(g, [](ClusterId) { return true; });
}

double behavior_count(const HierarchicalGraph& g,
                      const DynBitset& activated_clusters) {
  return behavior_count(g, [&](ClusterId c) {
    return activated_clusters.test(c.index());
  });
}

}  // namespace sdf
