// Behavior counting: the "possible interchanges" of §3.
//
// "The basic idea, as stated here, is to enumerate the possible
// interchanges of implementing clusters in the whole system's problem
// graph."  Def. 4 aggregates those interchanges into the additive
// flexibility value; this module computes the underlying combinatorial
// quantity directly: the number of distinct complete behaviors (elementary
// cluster activations) an activatable-cluster set admits.  The count obeys
//   behaviors(cluster)  = product over its interfaces of
//                         (sum over activatable refinements of behaviors)
// and relates to Def. 4 by f <= behaviors, with equality exactly when no
// cluster contains more than one interface (the "-(|Psi|-1)" correction of
// Def. 4 collapses products into sums).
#pragma once

#include <optional>

#include "flex/flexibility.hpp"
#include "graph/hierarchical_graph.hpp"
#include "util/dyn_bitset.hpp"

namespace sdf {

/// Number of complete behaviors of `cluster` under `a_plus`; 0 when the
/// cluster itself is inactive or some reached interface has no activatable
/// refinement.  Computed arithmetically (no enumeration), so it is exact
/// even when the count is astronomically large (double precision permitting).
[[nodiscard]] double behavior_count(const HierarchicalGraph& g,
                                    ClusterId cluster,
                                    const ActivationPredicate& a_plus);

/// Behaviors of the whole graph (root cluster).
[[nodiscard]] double behavior_count(const HierarchicalGraph& g,
                                    const ActivationPredicate& a_plus);

/// Behaviors with every cluster activatable.
[[nodiscard]] double max_behavior_count(const HierarchicalGraph& g);

/// Bitset convenience overload.
[[nodiscard]] double behavior_count(const HierarchicalGraph& g,
                                    const DynBitset& activated_clusters);

}  // namespace sdf
