#include "flex/activatability.hpp"

namespace sdf {
namespace {

/// Recursive activatability per the header's definition.  `memo` caches by
/// cluster index (tri-state: -1 unknown, 0 no, 1 yes).
bool compute(const SpecificationGraph& spec, const AllocSet& alloc,
             ClusterId cluster, std::vector<int>& memo) {
  int& slot = memo[cluster.index()];
  if (slot >= 0) return slot == 1;

  const HierarchicalGraph& p = spec.problem();
  const Cluster& c = p.cluster(cluster);
  bool ok = true;
  for (NodeId nid : c.nodes) {
    const Node& n = p.node(nid);
    if (n.is_interface()) {
      bool any = false;
      for (ClusterId sub : n.clusters)
        if (compute(spec, alloc, sub, memo)) any = true;
      if (!any) {
        ok = false;
        break;
      }
    } else {
      bool reachable = false;
      for (const AllocUnitId u : spec.reachable_units(nid))
        if (alloc.test(u.index())) reachable = true;
      if (!reachable) {
        ok = false;
        break;
      }
    }
  }
  slot = ok ? 1 : 0;
  return ok;
}

}  // namespace

Activatability::Activatability(const SpecificationGraph& spec,
                               const AllocSet& alloc)
    : spec_(spec), activatable_(spec.problem().cluster_count()) {
  std::vector<int> memo(spec.problem().cluster_count(), -1);
  root_ = compute(spec, alloc, spec.problem().root(), memo);
  for (std::size_t i = 0; i < memo.size(); ++i) {
    // Clusters never visited by the recursion (because an enclosing
    // interface already failed) are evaluated on demand here so the bitset
    // is complete.
    if (memo[i] < 0)
      compute(spec, alloc, ClusterId{i}, memo);
    if (memo[i] == 1) activatable_.set(i);
  }
}

std::optional<double> Activatability::estimated_flexibility() const {
  if (!root_) return std::nullopt;
  return flexibility(spec_.problem(), activatable_);
}

std::optional<double> estimate_flexibility(const SpecificationGraph& spec,
                                           const AllocSet& alloc) {
  return Activatability(spec, alloc).estimated_flexibility();
}

bool is_possible_allocation(const SpecificationGraph& spec,
                            const AllocSet& alloc) {
  return Activatability(spec, alloc).root_activatable();
}

}  // namespace sdf
