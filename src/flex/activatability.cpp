#include "flex/activatability.hpp"

#include "spec/compiled.hpp"

namespace sdf {
namespace {

/// Recursive activatability per the header's definition.  `memo` caches by
/// cluster index (tri-state: -1 unknown, 0 no, 1 yes).
bool compute(const CompiledSpec& cs, const AllocSet& alloc, ClusterId cluster,
             std::vector<int>& memo) {
  int& slot = memo[cluster.index()];
  if (slot >= 0) return slot == 1;

  const HierarchicalGraph& p = cs.problem();
  const Cluster& c = p.cluster(cluster);
  bool ok = true;
  for (NodeId nid : c.nodes) {
    const Node& n = p.node(nid);
    if (n.is_interface()) {
      bool any = false;
      for (ClusterId sub : n.clusters)
        if (compute(cs, alloc, sub, memo)) any = true;
      if (!any) {
        ok = false;
        break;
      }
    } else if (!alloc.intersects(cs.reachable_units(nid))) {
      ok = false;
      break;
    }
  }
  slot = ok ? 1 : 0;
  return ok;
}

}  // namespace

Activatability::Activatability(const CompiledSpec& cs, const AllocSet& alloc)
    : problem_(cs.problem()), activatable_(cs.problem().cluster_count()) {
  std::vector<int> memo(problem_.cluster_count(), -1);
  root_ = compute(cs, alloc, problem_.root(), memo);
  for (std::size_t i = 0; i < memo.size(); ++i) {
    // Clusters never visited by the recursion (because an enclosing
    // interface already failed) are evaluated on demand here so the bitset
    // is complete.
    if (memo[i] < 0)
      compute(cs, alloc, ClusterId{i}, memo);
    if (memo[i] == 1) activatable_.set(i);
  }
}

Activatability::Activatability(const SpecificationGraph& spec,
                               const AllocSet& alloc)
    : Activatability(spec.compiled(), alloc) {}

std::optional<double> Activatability::estimated_flexibility() const {
  if (!root_) return std::nullopt;
  return flexibility(problem_, activatable_);
}

std::optional<double> estimate_flexibility(const CompiledSpec& cs,
                                           const AllocSet& alloc) {
  return Activatability(cs, alloc).estimated_flexibility();
}

std::optional<double> estimate_flexibility(const SpecificationGraph& spec,
                                           const AllocSet& alloc) {
  return Activatability(spec.compiled(), alloc).estimated_flexibility();
}

bool is_possible_allocation(const CompiledSpec& cs, const AllocSet& alloc) {
  return Activatability(cs, alloc).root_activatable();
}

bool is_possible_allocation(const SpecificationGraph& spec,
                            const AllocSet& alloc) {
  return Activatability(spec.compiled(), alloc).root_activatable();
}

}  // namespace sdf
