// The flexibility metric (Def. 4).
//
//   f(gamma) = a+(gamma) * ( sum_{psi in gamma.Psi} sum_{gh in psi.Gamma}
//                            f(gh)  -  (|gamma.Psi| - 1) )      if Psi != {}
//   f(gamma) = a+(gamma) * 1                                    otherwise
//
// where a+(gamma) in {0,1} states whether cluster gamma will ever be
// activated.  The flexibility of a graph is the flexibility of its root
// cluster with a+(root) = 1 whenever any behavior is implementable.
//
// Footnote 2 of the paper notes that "more sophisticated flexibility
// calculations are possible, e.g., by using weighted sums"; the weighted
// variant here reads a per-cluster weight (leaf clusters contribute their
// weight instead of 1), expressing that some behavioral alternatives are
// worth more than others.
#pragma once

#include <functional>

#include "graph/hierarchical_graph.hpp"
#include "util/dyn_bitset.hpp"

namespace sdf {

/// a+(gamma): whether a cluster will ever be activated in the future.
using ActivationPredicate = std::function<bool(ClusterId)>;

/// Attribute key for the weighted variant (default weight 1).
inline constexpr const char* kFlexWeightAttr = "flex_weight";

/// Def. 4 applied to `cluster` under predicate `a_plus`.
[[nodiscard]] double flexibility(const HierarchicalGraph& g, ClusterId cluster,
                                 const ActivationPredicate& a_plus);

/// Def. 4 applied to the whole graph (its root cluster; the root itself uses
/// a+(root) = 1).
[[nodiscard]] double flexibility(const HierarchicalGraph& g,
                                 const ActivationPredicate& a_plus);

/// Flexibility with every cluster activatable — the maximal flexibility of
/// the specification ("computeMaximumFlexibility" of the EXPLORE listing).
[[nodiscard]] double max_flexibility(const HierarchicalGraph& g);

/// Flexibility under a set-valued predicate: a+(gamma) = activated[gamma].
[[nodiscard]] double flexibility(const HierarchicalGraph& g,
                                 const DynBitset& activated_clusters);

/// Weighted variant (footnote 2): leaf clusters contribute their
/// `flex_weight` attribute (default 1.0) instead of 1.
[[nodiscard]] double weighted_flexibility(const HierarchicalGraph& g,
                                          ClusterId cluster,
                                          const ActivationPredicate& a_plus);
[[nodiscard]] double weighted_flexibility(const HierarchicalGraph& g,
                                          const ActivationPredicate& a_plus);

}  // namespace sdf
