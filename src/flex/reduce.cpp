#include "flex/reduce.hpp"

#include "flex/activatability.hpp"
#include "graph/filter.hpp"

namespace sdf {

SpecificationGraph reduce_specification(const SpecificationGraph& spec,
                                        const AllocSet& alloc) {
  // Architecture: keep top-level vertices whose unit is allocated, every
  // interface with at least one allocated configuration, allocated
  // configuration clusters, and all nodes inside kept configurations.
  const auto arch_keep_cluster = [&](const Cluster& c) {
    // Only outermost refinement clusters are units; nested clusters follow
    // their enclosing unit (their leaves resolve to the same unit).
    const auto leaves = spec.architecture().leaves(c.id);
    if (leaves.empty()) return true;  // structural oddity: keep
    const AllocUnitId unit = spec.unit_of_resource(leaves.front());
    if (!unit.valid()) return true;
    return alloc.test(unit.index());
  };
  const auto arch_keep_node = [&](const Node& n) {
    if (n.is_interface()) {
      // Keep a device iff one of its configurations is allocated.
      for (ClusterId sub : n.clusters) {
        const auto leaves = spec.architecture().leaves(sub);
        if (leaves.empty()) continue;
        const AllocUnitId unit = spec.unit_of_resource(leaves.front());
        if (unit.valid() && alloc.test(unit.index())) return true;
      }
      return false;
    }
    // Top-level vertex: keep iff its unit is allocated.  Nodes inside
    // clusters are handled by the cluster predicate; keep them.
    if (!spec.architecture().cluster(n.parent).is_root()) return true;
    const AllocUnitId unit = spec.unit_of_resource(n.id);
    return unit.valid() && alloc.test(unit.index());
  };
  FilterResult arch =
      filter_graph(spec.architecture(), arch_keep_node, arch_keep_cluster);

  // Problem: keep vertices with at least one mapping edge into a surviving
  // architecture leaf, interfaces with at least one activatable refinement,
  // and exactly the activatable clusters.  (A cluster emptied of its
  // unmappable vertices would otherwise read as a trivially-implementable
  // leaf alternative under Def. 4 and inflate the flexibility.)
  const Activatability act(spec, alloc);
  const auto problem_keep = [&](const Node& n) {
    if (n.is_interface()) {
      for (ClusterId sub : n.clusters)
        if (act.activatable(sub)) return true;
      return false;
    }
    for (const MappingEdge& m : spec.mappings_of(n.id))
      if (arch.node_map[m.resource.index()].valid()) return true;
    return false;
  };
  const auto problem_keep_cluster = [&](const Cluster& c) {
    return act.activatable(c.id);
  };
  FilterResult problem =
      filter_graph(spec.problem(), problem_keep, problem_keep_cluster);

  SpecificationGraph reduced(spec.name() + ".reduced");
  reduced.problem() = std::move(problem.graph);
  reduced.architecture() = std::move(arch.graph);
  for (const MappingEdge& m : spec.mappings()) {
    const NodeId p = problem.node_map[m.process.index()];
    const NodeId r = arch.node_map[m.resource.index()];
    if (p.valid() && r.valid()) reduced.add_mapping(p, r, m.latency);
  }
  return reduced;
}

}  // namespace sdf
