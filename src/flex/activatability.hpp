// Activatability analysis and flexibility estimation (§4).
//
// Given a resource allocation (a set of allocatable units), a problem-graph
// cluster is *activatable* when the allocation could implement it if binding
// feasibility is ignored:
//   - every non-hierarchical vertex of the cluster has at least one mapping
//     edge into an allocated unit ("reachable resources" R_ij), and
//   - every interface of the cluster has at least one activatable
//     refinement (recursively).
//
// The *flexibility estimate* of an allocation is Def. 4 evaluated with
// a+ = activatable; it upper-bounds the flexibility of any implementation
// on that allocation and is the bound the EXPLORE algorithm prunes with.
// An allocation is a *possible resource allocation* iff the root cluster is
// activatable — i.e. at least one complete problem-graph activation is
// coverable.
#pragma once

#include <optional>

#include "flex/flexibility.hpp"
#include "spec/specification.hpp"

namespace sdf {

class CompiledSpec;

/// Per-cluster activatability of the problem graph under `alloc`.
class Activatability {
 public:
  /// Preferred form: one bitset intersection per process against the
  /// compiled reachable-unit sets, no per-call allocation.
  Activatability(const CompiledSpec& cs, const AllocSet& alloc);
  /// Shim over `spec.compiled()`.
  Activatability(const SpecificationGraph& spec, const AllocSet& alloc);

  /// True iff `cluster` (a problem-graph cluster) is activatable.
  [[nodiscard]] bool activatable(ClusterId cluster) const {
    return activatable_.test(cluster.index());
  }

  /// Bitset over problem-graph cluster ids (root included).
  [[nodiscard]] const DynBitset& clusters() const { return activatable_; }

  /// True iff the root cluster is activatable: the allocation is a
  /// *possible resource allocation*.
  [[nodiscard]] bool root_activatable() const { return root_; }

  /// Def. 4 with a+ = activatable; `nullopt` when the root itself is not
  /// activatable (no feasible problem activation exists at all).
  [[nodiscard]] std::optional<double> estimated_flexibility() const;

 private:
  const HierarchicalGraph& problem_;
  DynBitset activatable_;
  bool root_ = false;
};

/// Convenience: the flexibility estimate of `alloc`, or `nullopt` when
/// `alloc` is not a possible resource allocation.
[[nodiscard]] std::optional<double> estimate_flexibility(
    const CompiledSpec& cs, const AllocSet& alloc);
[[nodiscard]] std::optional<double> estimate_flexibility(
    const SpecificationGraph& spec, const AllocSet& alloc);

/// Convenience: possible-resource-allocation test (§4).
[[nodiscard]] bool is_possible_allocation(const CompiledSpec& cs,
                                          const AllocSet& alloc);
[[nodiscard]] bool is_possible_allocation(const SpecificationGraph& spec,
                                          const AllocSet& alloc);

}  // namespace sdf
