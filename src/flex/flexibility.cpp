#include "flex/flexibility.hpp"

namespace sdf {
namespace {

double flexibility_impl(const HierarchicalGraph& g, ClusterId cluster,
                        const ActivationPredicate& a_plus, bool weighted) {
  const Cluster& c = g.cluster(cluster);
  const bool active = c.is_root() ? true : a_plus(cluster);
  if (!active) return 0.0;

  // Collect the interfaces of this cluster.
  std::size_t interface_count = 0;
  double sum = 0.0;
  for (NodeId nid : c.nodes) {
    const Node& n = g.node(nid);
    if (!n.is_interface()) continue;
    ++interface_count;
    for (ClusterId sub : n.clusters)
      sum += flexibility_impl(g, sub, a_plus, weighted);
  }

  if (interface_count == 0) {
    // Leaf cluster: contributes 1 (or its weight in the weighted variant).
    return weighted ? g.attr_or(cluster, kFlexWeightAttr, 1.0) : 1.0;
  }
  return sum - (static_cast<double>(interface_count) - 1.0);
}

}  // namespace

double flexibility(const HierarchicalGraph& g, ClusterId cluster,
                   const ActivationPredicate& a_plus) {
  return flexibility_impl(g, cluster, a_plus, /*weighted=*/false);
}

double flexibility(const HierarchicalGraph& g,
                   const ActivationPredicate& a_plus) {
  return flexibility_impl(g, g.root(), a_plus, /*weighted=*/false);
}

double max_flexibility(const HierarchicalGraph& g) {
  return flexibility(g, [](ClusterId) { return true; });
}

double flexibility(const HierarchicalGraph& g,
                   const DynBitset& activated_clusters) {
  return flexibility(g, [&](ClusterId c) {
    return activated_clusters.test(c.index());
  });
}

double weighted_flexibility(const HierarchicalGraph& g, ClusterId cluster,
                            const ActivationPredicate& a_plus) {
  return flexibility_impl(g, cluster, a_plus, /*weighted=*/true);
}

double weighted_flexibility(const HierarchicalGraph& g,
                            const ActivationPredicate& a_plus) {
  return flexibility_impl(g, g.root(), a_plus, /*weighted=*/true);
}

}  // namespace sdf
