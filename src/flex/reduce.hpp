// Reduced specification graphs (§4).
//
// "For every possible resource allocation, we remove all resources that
// are not activated from the architecture graph.  By removing these
// elements, also mapping edges are removed from the specification graph.
// Next, we delete all vertices in the problem graph with no incident
// mapping edge.  This results in a reduced specification graph."
//
// `reduce_specification` materializes exactly that object: a standalone
// specification containing only the allocated architecture (unallocated
// top-level vertices and configurations dropped) and the problem vertices
// still implementable on it.  Flexibility estimation on the reduction
// equals estimation on the original under the same allocation — which is
// how the paper evaluates Def. 4 "by solving a single boolean equation".
#pragma once

#include "spec/specification.hpp"

namespace sdf {

/// The reduction of `spec` under `alloc`.  The result is self-contained
/// (fresh ids); entity names are preserved, so look-ups by name carry
/// over.  Problem clusters that are not activatable under `alloc` are
/// dropped entirely (a cluster merely emptied of its unmappable vertices
/// would read as a trivially-implementable alternative under Def. 4), so
/// for every *possible resource allocation* the maximal flexibility of the
/// reduction equals the flexibility estimate of `alloc` on the original.
[[nodiscard]] SpecificationGraph reduce_specification(
    const SpecificationGraph& spec, const AllocSet& alloc);

}  // namespace sdf
