// Seeded synthetic specification generator.
//
// The paper claims "industrial size applications can be efficiently explored
// within minutes" on search spaces of 10^5 - 10^12 design points.  Those
// industrial models are not published; this generator produces structurally
// similar specifications — a platform of processors/accelerators/buses and
// a set of applications with alternative-rich hierarchies — at controlled
// sizes, so the scaling behavior of EXPLORE (vs. the exhaustive and
// evolutionary baselines) can be measured.  Everything is deterministic in
// the seed.
#pragma once

#include <cstdint>

#include "spec/specification.hpp"

namespace sdf {

struct GeneratorParams {
  std::uint64_t seed = 1;

  // Problem side.
  std::size_t applications = 3;           ///< top-level alternatives
  std::size_t processes_per_app_min = 2;  ///< fixed processes per application
  std::size_t processes_per_app_max = 4;
  std::size_t interfaces_per_app_max = 2;  ///< variation points per app
  std::size_t clusters_per_interface_min = 2;
  std::size_t clusters_per_interface_max = 3;
  /// Probability that a refinement cluster nests another interface.
  double nested_interface_prob = 0.15;
  std::size_t max_depth = 3;

  // Architecture side.
  std::size_t processors = 2;    ///< general-purpose (run everything)
  std::size_t accelerators = 2;  ///< specialized (run a random subset)
  std::size_t fpga_configs = 2;  ///< configurations of one device
  double bus_density = 0.6;      ///< probability of a bus per cpu/acc pair

  // Mapping side.
  double accel_mapping_prob = 0.4;  ///< process mappable onto an accelerator
  double fpga_mapping_prob = 0.25;  ///< process mappable onto a config

  // Nested-tile mode (the `preset_nested_*` family).  When `tiles > 0` the
  // flat knobs above are ignored and the generator emits `tiles`
  // independent root interfaces, each refined by `tile_alternatives`
  // repeated cluster templates: a chain of `tile_processes` processes
  // mapped onto a tile-local processor pool, plus (down to `max_depth`) a
  // nested interface refined the same way.  Tiles share no units, no edges
  // and no devices, and the nested interface is deliberately not wired to
  // the chain — the spec therefore decomposes at every level, which is the
  // workload the hierarchical solve path is built for (and the flat kernel
  // re-solves from scratch per ECA).
  std::size_t tiles = 0;
  std::size_t tile_alternatives = 2;  ///< repeated templates per interface
  std::size_t tile_processes = 2;     ///< chain length per template
  std::size_t tile_processors = 2;    ///< local cpus per tile per depth level
  /// Also wire one global bus across every processor (exercises the
  /// hierarchical path's communication-mask projection).
  bool tile_bus = false;

  // Annotations.
  double cost_min = 50.0, cost_max = 300.0;
  double latency_min = 10.0, latency_max = 100.0;
  /// Probability that an application carries a period constraint.
  double timed_app_prob = 0.5;
  /// Period range for constrained applications (chosen so that feasibility
  /// is workload-dependent rather than trivial).
  double period_min = 150.0, period_max = 600.0;
};

/// Generates a random-but-valid specification from `params`.  Every process
/// is mappable to at least one processor, so possible resource allocations
/// always exist.
[[nodiscard]] SpecificationGraph generate_spec(const GeneratorParams& params);

}  // namespace sdf
