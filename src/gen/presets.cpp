#include "gen/presets.hpp"

namespace sdf {

const char* preset_name(PlatformPreset preset) {
  switch (preset) {
    case PlatformPreset::kSetTopBox: return "settop-box";
    case PlatformPreset::kAutomotiveEcu: return "automotive-ecu";
    case PlatformPreset::kBasebandDsp: return "baseband-dsp";
    case PlatformPreset::kNestedS: return "nested-s";
    case PlatformPreset::kNestedM: return "nested-m";
    case PlatformPreset::kNestedXl: return "nested-xl";
  }
  return "?";
}

GeneratorParams preset_params(PlatformPreset preset, std::uint64_t seed) {
  GeneratorParams p;
  p.seed = seed;
  switch (preset) {
    case PlatformPreset::kSetTopBox:
      p.applications = 3;
      p.processes_per_app_min = 2;
      p.processes_per_app_max = 4;
      p.interfaces_per_app_max = 2;
      p.clusters_per_interface_min = 2;
      p.clusters_per_interface_max = 3;
      p.processors = 2;
      p.accelerators = 2;
      p.fpga_configs = 3;
      p.bus_density = 0.5;
      p.timed_app_prob = 0.6;
      break;
    case PlatformPreset::kAutomotiveEcu:
      p.applications = 6;
      p.processes_per_app_min = 1;
      p.processes_per_app_max = 3;
      p.interfaces_per_app_max = 1;
      p.clusters_per_interface_min = 2;
      p.clusters_per_interface_max = 2;
      p.processors = 4;
      p.accelerators = 1;
      p.fpga_configs = 0;
      p.bus_density = 0.9;
      p.timed_app_prob = 1.0;     // everything has a deadline
      p.period_min = 200.0;
      p.period_max = 800.0;
      p.accel_mapping_prob = 0.2;
      break;
    case PlatformPreset::kBasebandDsp:
      p.applications = 2;
      p.processes_per_app_min = 3;
      p.processes_per_app_max = 5;
      p.interfaces_per_app_max = 2;
      p.clusters_per_interface_min = 2;
      p.clusters_per_interface_max = 4;
      p.nested_interface_prob = 0.5;  // deep alternative hierarchies
      p.max_depth = 4;
      p.processors = 1;
      p.accelerators = 4;
      p.fpga_configs = 4;
      p.bus_density = 0.7;
      p.accel_mapping_prob = 0.6;
      p.fpga_mapping_prob = 0.5;
      p.timed_app_prob = 0.5;
      break;
    case PlatformPreset::kNestedS:
      // 5 tiles x 4 levels x 5 cpus = 100 functional units (+ buses).
      p.tiles = 5;
      p.max_depth = 4;
      p.tile_processors = 5;
      p.tile_alternatives = 2;
      p.tile_processes = 2;
      p.tile_bus = true;
      p.timed_app_prob = 0.5;
      break;
    case PlatformPreset::kNestedM:
      // 8 tiles x 6 levels x 6 cpus = 288 functional units (+ buses).
      p.tiles = 8;
      p.max_depth = 6;
      p.tile_processors = 6;
      p.tile_alternatives = 2;
      p.tile_processes = 2;
      p.tile_bus = true;
      p.timed_app_prob = 0.5;
      break;
    case PlatformPreset::kNestedXl:
      // 12 tiles x 8 levels x 10 cpus = 960 functional units (+ buses).
      p.tiles = 12;
      p.max_depth = 8;
      p.tile_processors = 10;
      p.tile_alternatives = 2;
      p.tile_processes = 2;
      p.tile_bus = true;
      p.timed_app_prob = 0.5;
      break;
  }
  return p;
}

SpecificationGraph generate_preset(PlatformPreset preset,
                                   std::uint64_t seed) {
  return generate_spec(preset_params(preset, seed));
}

}  // namespace sdf
