// Domain presets for the synthetic generator.
//
// Three platform archetypes with distinct structure, standing in for the
// "industrial size applications" the paper alludes to (§5).  Each preset
// fixes the structural knobs; the seed still controls the concrete random
// draws, so a (preset, seed) pair is a reproducible benchmark instance.
#pragma once

#include "gen/spec_generator.hpp"

namespace sdf {

enum class PlatformPreset {
  /// Consumer multimedia box (the paper's domain): a handful of rich
  /// applications, one reconfigurable device, cheap buses.
  kSetTopBox,
  /// Automotive ECU network: many small hard-real-time functions, several
  /// processors, dense bus matrix, hardly any reconfigurable logic.
  kAutomotiveEcu,
  /// Baseband / DSP farm: few applications with deep alternative
  /// hierarchies, many accelerators and FPGA configurations.
  kBasebandDsp,
};

[[nodiscard]] const char* preset_name(PlatformPreset preset);

/// Generator parameters of `preset` with randomness tied to `seed`.
[[nodiscard]] GeneratorParams preset_params(PlatformPreset preset,
                                            std::uint64_t seed);

/// Convenience: generate directly from a preset.
[[nodiscard]] SpecificationGraph generate_preset(PlatformPreset preset,
                                                 std::uint64_t seed);

}  // namespace sdf
