// Domain presets for the synthetic generator.
//
// Three platform archetypes with distinct structure, standing in for the
// "industrial size applications" the paper alludes to (§5).  Each preset
// fixes the structural knobs; the seed still controls the concrete random
// draws, so a (preset, seed) pair is a reproducible benchmark instance.
#pragma once

#include "gen/spec_generator.hpp"

namespace sdf {

enum class PlatformPreset {
  /// Consumer multimedia box (the paper's domain): a handful of rich
  /// applications, one reconfigurable device, cheap buses.
  kSetTopBox,
  /// Automotive ECU network: many small hard-real-time functions, several
  /// processors, dense bus matrix, hardly any reconfigurable logic.
  kAutomotiveEcu,
  /// Baseband / DSP farm: few applications with deep alternative
  /// hierarchies, many accelerators and FPGA configurations.
  kBasebandDsp,
  /// Deep-hierarchy tile family (`preset_nested_*`): independent tiles of
  /// repeated cluster templates over disjoint per-level processor pools —
  /// the workload the hierarchical solve path turns from multiplicative
  /// (per-ECA flat solves) into additive (per-group sub-solves).  Small:
  /// ~100 units, depth 4.
  kNestedS,
  /// Medium nested-tile instance: ~300 units, depth 6.
  kNestedM,
  /// Large nested-tile instance: ~1000 units, depth 8.
  kNestedXl,
};

[[nodiscard]] const char* preset_name(PlatformPreset preset);

/// Generator parameters of `preset` with randomness tied to `seed`.
[[nodiscard]] GeneratorParams preset_params(PlatformPreset preset,
                                            std::uint64_t seed);

/// Convenience: generate directly from a preset.
[[nodiscard]] SpecificationGraph generate_preset(PlatformPreset preset,
                                                 std::uint64_t seed);

}  // namespace sdf
