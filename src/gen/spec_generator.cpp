#include "gen/spec_generator.hpp"

#include <algorithm>
#include <cmath>

#include "spec/builder.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sdf {
namespace {

class Generator {
 public:
  explicit Generator(const GeneratorParams& params)
      : params_(params), rng_(params.seed) {}

  SpecificationGraph run() {
    if (params_.tiles > 0) {
      build_nested();
      return builder_.build();
    }
    build_architecture();
    build_problem();
    return builder_.build();
  }

 private:
  double rand_cost() {
    return std::floor(rng_.uniform_double(params_.cost_min, params_.cost_max));
  }
  double rand_latency() {
    return std::floor(
        rng_.uniform_double(params_.latency_min, params_.latency_max));
  }

  void build_architecture() {
    for (std::size_t i = 0; i < params_.processors; ++i)
      cpus_.push_back(
          builder_.resource(strprintf("cpu%zu", i), rand_cost()));
    for (std::size_t i = 0; i < params_.accelerators; ++i)
      accels_.push_back(
          builder_.resource(strprintf("acc%zu", i), rand_cost()));
    if (params_.fpga_configs > 0) {
      fpga_ = builder_.device("fpga", 0.0);
      for (std::size_t i = 0; i < params_.fpga_configs; ++i)
        configs_.push_back(builder_.configuration(
            fpga_, strprintf("cfg%zu", i), rand_cost()));
    }
    // Buses: every cpu-accelerator / cpu-fpga pair gets one with probability
    // bus_density; ensure at least one bus per accelerator/device so no
    // resource is structurally unusable.
    std::size_t bus_id = 0;
    auto wire = [&](NodeId a, NodeId b) {
      builder_.bus(strprintf("bus%zu", bus_id++),
                   std::floor(rng_.uniform_double(5.0, 30.0)), {a, b});
    };
    for (NodeId acc : accels_) {
      bool wired = false;
      for (NodeId cpu : cpus_) {
        if (rng_.chance(params_.bus_density)) {
          wire(cpu, acc);
          wired = true;
        }
      }
      if (!wired && !cpus_.empty())
        wire(cpus_[rng_.pick_index(cpus_)], acc);
    }
    if (fpga_.valid()) {
      bool wired = false;
      for (NodeId cpu : cpus_) {
        if (rng_.chance(params_.bus_density)) {
          wire(cpu, fpga_);
          wired = true;
        }
      }
      if (!wired && !cpus_.empty()) wire(cpus_[rng_.pick_index(cpus_)], fpga_);
    }
  }

  /// Maps `process` onto all cpus plus random accelerators/configurations.
  void map_process(NodeId process) {
    for (NodeId cpu : cpus_) builder_.map(process, cpu, rand_latency());
    for (NodeId acc : accels_)
      if (rng_.chance(params_.accel_mapping_prob))
        // Accelerators are faster: halve the latency scale.
        builder_.map(process, acc, std::max(1.0, rand_latency() / 2.0));
    for (NodeId cfg : configs_)
      if (rng_.chance(params_.fpga_mapping_prob))
        builder_.map(process, cfg, std::max(1.0, rand_latency() / 2.0));
  }

  /// Fills `cluster` with a small chain of processes and, depth permitting,
  /// nested interfaces with alternatives.
  void fill_cluster(ClusterId cluster, std::size_t depth, double period) {
    const std::size_t nproc = static_cast<std::size_t>(rng_.uniform_int(
        static_cast<std::int64_t>(params_.processes_per_app_min),
        static_cast<std::int64_t>(params_.processes_per_app_max)));
    NodeId prev;
    for (std::size_t i = 0; i < nproc; ++i) {
      const NodeId p = builder_.process(
          strprintf("p%zu", next_process_id_++), cluster);
      map_process(p);
      if (period > 0.0) builder_.timing(p, period);
      if (prev.valid()) builder_.depends(prev, p);
      prev = p;
    }

    if (depth >= params_.max_depth) return;
    const std::size_t nif = static_cast<std::size_t>(
        rng_.uniform(params_.interfaces_per_app_max + 1));
    for (std::size_t i = 0; i < nif; ++i) {
      const NodeId iface = builder_.interface(
          strprintf("if%zu", next_interface_id_++), cluster);
      if (prev.valid()) builder_.depends(prev, iface);
      const std::size_t nclusters = static_cast<std::size_t>(rng_.uniform_int(
          static_cast<std::int64_t>(params_.clusters_per_interface_min),
          static_cast<std::int64_t>(params_.clusters_per_interface_max)));
      for (std::size_t c = 0; c < nclusters; ++c) {
        const ClusterId sub = builder_.alternative(
            iface, strprintf("c%zu", next_cluster_id_++));
        const bool nest = rng_.chance(params_.nested_interface_prob);
        fill_cluster(sub, nest ? depth + 1 : params_.max_depth, period);
      }
    }
  }

  // ---- nested-tile mode -----------------------------------------------------

  /// Architecture: one processor pool (with a local bus) per tile per depth
  /// level; pools are never shared, so no two tiles — and no chain and its
  /// nested interface — couple through a unit.
  void build_nested() {
    pools_.assign(params_.tiles,
                  std::vector<std::vector<NodeId>>(params_.max_depth));
    std::vector<NodeId> all_cpus;
    for (std::size_t t = 0; t < params_.tiles; ++t) {
      for (std::size_t d = 0; d < params_.max_depth; ++d) {
        std::vector<NodeId>& pool = pools_[t][d];
        for (std::size_t k = 0; k < params_.tile_processors; ++k) {
          pool.push_back(builder_.resource(
              strprintf("t%zud%zucpu%zu", t, d, k), rand_cost()));
          all_cpus.push_back(pool.back());
        }
        if (pool.size() > 1)
          builder_.bus(strprintf("t%zud%zubus", t, d),
                       std::floor(rng_.uniform_double(5.0, 30.0)), pool);
      }
    }
    if (params_.tile_bus && all_cpus.size() > 1)
      builder_.bus("gbus", std::floor(rng_.uniform_double(5.0, 30.0)),
                   all_cpus);

    // Problem: independent root interfaces, one per tile.
    for (std::size_t t = 0; t < params_.tiles; ++t) {
      const NodeId iface = builder_.interface(strprintf("tile%zu", t));
      const double period =
          rng_.chance(params_.timed_app_prob)
              ? std::floor(rng_.uniform_double(params_.period_min,
                                               params_.period_max))
              : 0.0;
      fill_tile(iface, t, 0, period);
    }
  }

  /// Refines `iface` with `tile_alternatives` repeated templates: a process
  /// chain on the tile's depth-`depth` pool plus, depth permitting, one
  /// nested interface.  The nested interface is intentionally NOT wired to
  /// the chain, so each template decomposes into a chain group and a
  /// single-interface group.
  void fill_tile(NodeId iface, std::size_t tile, std::size_t depth,
                 double period) {
    for (std::size_t c = 0; c < params_.tile_alternatives; ++c) {
      const ClusterId sub = builder_.alternative(
          iface, strprintf("t%zuc%zu", tile, next_cluster_id_++));
      NodeId prev;
      for (std::size_t i = 0; i < params_.tile_processes; ++i) {
        const NodeId p = builder_.process(
            strprintf("p%zu", next_process_id_++), sub);
        for (NodeId cpu : pools_[tile][depth])
          builder_.map(p, cpu, rand_latency());
        if (period > 0.0) builder_.timing(p, period);
        if (prev.valid()) builder_.depends(prev, p);
        prev = p;
      }
      if (depth + 1 < params_.max_depth) {
        const NodeId nested = builder_.interface(
            strprintf("t%zuif%zu", tile, next_interface_id_++), sub);
        fill_tile(nested, tile, depth + 1, period);
      }
    }
  }

  void build_problem() {
    const NodeId iapp = builder_.interface("apps");
    for (std::size_t a = 0; a < params_.applications; ++a) {
      const ClusterId app =
          builder_.alternative(iapp, strprintf("app%zu", a));
      const double period =
          rng_.chance(params_.timed_app_prob)
              ? std::floor(rng_.uniform_double(params_.period_min,
                                               params_.period_max))
              : 0.0;
      fill_cluster(app, 1, period);
    }
  }

  GeneratorParams params_;
  Rng rng_;
  SpecBuilder builder_{"synthetic"};
  std::vector<NodeId> cpus_;
  std::vector<std::vector<std::vector<NodeId>>> pools_;  // [tile][depth]
  std::vector<NodeId> accels_;
  NodeId fpga_;
  std::vector<NodeId> configs_;
  std::size_t next_process_id_ = 0;
  std::size_t next_interface_id_ = 0;
  std::size_t next_cluster_id_ = 0;
};

}  // namespace

SpecificationGraph generate_spec(const GeneratorParams& params) {
  return Generator(params).run();
}

}  // namespace sdf
