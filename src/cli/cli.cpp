#include "cli/cli.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "analysis/analysis.hpp"
#include "explore/evolutionary.hpp"
#include "explore/explorer.hpp"
#include "explore/incremental.hpp"
#include "explore/parallel_explorer.hpp"
#include "explore/queries.hpp"
#include "explore/report.hpp"
#include "explore/sensitivity.hpp"
#include "flex/reduce.hpp"
#include "flex/activatability.hpp"
#include "flex/flexibility.hpp"
#include "gen/presets.hpp"
#include "gen/spec_generator.hpp"
#include "graph/dot.hpp"
#include "lint/lint.hpp"
#include "spec/paper_models.hpp"
#include "spec/spec_dot.hpp"
#include "spec/spec_io.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace sdf {
namespace {

Result<SpecificationGraph> load_spec(const std::string& path,
                                     const SpecParseOptions& options = {}) {
  // Chunked streaming load with ingest caps; "-" reads stdin (pipes and
  // FIFOs work — the input is never materialized as one buffer).
  return spec_from_file(path, options);
}

/// Error-severity lint rules as a gate before a potentially long
/// exploration.  Cheap (no solver calls), catches defects the structural
/// load-time validation cannot (unmappable leaves, impossible timing, ...).
bool preflight_ok(const SpecificationGraph& spec, std::ostream& err) {
  const LintReport report = lint_errors(spec);
  if (!report.has_errors()) return true;
  err << "preflight: specification cannot yield a feasible implementation ("
      << report.errors()
      << " error(s); 'sdf lint' shows the full report, --no-preflight "
         "bypasses this check)\n"
      << report.to_text();
  return false;
}

int usage(std::ostream& err) {
  err << "usage: sdf <command> [flags]\n"
         "commands:\n"
         "  validate <spec.json> [--json] check a specification (exit: 0 ok,\n"
         "                                1 warnings, 2 errors)\n"
         "  lint <spec.json> [flags]      full rule-based diagnostics; --list,\n"
         "                                --json, --rules=<ids>, --min-severity=<s>\n"
         "  flexibility <spec.json>       Def. 4 flexibility analysis\n"
         "  analyze <spec.json> [--json]  sound static bounds without solving:\n"
         "                                per-cluster cost intervals, packing\n"
         "                                relaxation, comm closure (exit 2 =\n"
         "                                front provably empty)\n"
         "  explore <spec.json> [flags]   flexibility/cost Pareto front;\n"
         "                                anytime: --deadline-ms, --max-solver-nodes,\n"
         "                                --checkpoint=<f> --resume (exit 3 = partial)\n"
         "  upgrade <spec.json> --existing=<units>   incremental upgrades\n"
         "  sensitivity <spec.json> --alloc=<units>  per-unit flexibility loss\n"
         "  reduce <spec.json> --alloc=<units>       reduced spec to stdout\n"
         "  dot <spec.json> [flags]       Graphviz rendering to stdout\n"
         "  generate [flags]              synthetic specification to stdout\n"
         "  demo <settop|decoder>         built-in paper model to stdout\n"
         "<spec.json> may be '-' to stream the specification from stdin.\n";
  return 2;
}

/// Parses --rules / --min-severity into LintOptions; nonzero = usage error.
int parse_lint_options(const Flags& flags, LintOptions& options,
                       std::ostream& err) {
  for (const std::string& raw_rule : split(flags.get("rules"), ',')) {
    const std::string rule(trim(raw_rule));
    if (rule.empty()) continue;
    if (find_lint_rule(rule) == nullptr) {
      err << "unknown lint rule '" << rule << "' (see 'sdf lint --list')\n";
      return 2;
    }
    options.only_rules.push_back(rule);
  }
  const std::optional<Severity> min = parse_severity(flags.get("min-severity"));
  if (!min.has_value()) {
    err << "unknown --min-severity value '" << flags.get("min-severity")
        << "' (note|warning|error)\n";
    return 2;
  }
  options.min_severity = *min;
  return 0;
}

int cmd_validate(const std::vector<std::string>& raw, std::ostream& out,
                 std::ostream& err) {
  Flags flags;
  flags.define_bool("json", false, "emit the report as JSON");
  if (Status s = flags.parse(raw); !s.ok()) {
    err << s.error().message << "\nflags:\n" << flags.usage();
    return 2;
  }
  if (flags.positional().empty()) {
    err << "validate: missing <spec.json>\n";
    return 2;
  }
  Result<SpecificationGraph> spec =
      load_spec(flags.positional()[0], SpecParseOptions{.validate = false});
  if (!spec.ok()) {
    err << "invalid: " << spec.error().message << '\n';
    return 2;
  }
  const SpecificationGraph& s = spec.value();
  // `validate` is the correctness gate: the lint registry without the
  // style-level notes.  `sdf lint` runs everything.
  LintOptions options;
  options.min_severity = Severity::kWarning;
  const LintReport report = lint(s, options);
  if (flags.get_bool("json")) {
    Json j = report.to_json();
    j.set("spec", s.name());
    j.set("valid", !report.has_errors());
    out << j.dump(2) << '\n';
    return report.exit_code();
  }
  if (report.clean()) {
    out << "valid: " << s.name() << " — " << s.problem().leaves().size()
        << " processes, " << s.problem().all_refinement_clusters().size()
        << " clusters, " << s.alloc_units().size() << " allocatable units, "
        << s.mappings().size() << " mapping edges\n";
    return 0;
  }
  out << report.to_text();
  return report.exit_code();
}

int cmd_lint(const std::vector<std::string>& raw, std::ostream& out,
             std::ostream& err) {
  Flags flags;
  flags.define_bool("json", false, "emit the report as JSON");
  flags.define_bool("list", false, "print the rule catalogue and exit");
  flags.define("rules", "",
               "comma-separated rule ids or names to run (empty = all)");
  flags.define("min-severity", "note",
               "run only rules of at least this severity: note|warning|error");
  if (Status s = flags.parse(raw); !s.ok()) {
    err << s.error().message << "\nflags:\n" << flags.usage();
    return 2;
  }
  if (flags.get_bool("list")) {
    Table table({"id", "severity", "name", "summary"});
    for (const RuleInfo& info : lint_rule_catalog())
      table.add_row({info.id, std::string(severity_name(info.severity)),
                     info.name, info.summary});
    out << table.to_ascii();
    return 0;
  }
  if (flags.positional().empty()) {
    err << "lint: missing <spec.json>\n";
    return 2;
  }
  LintOptions options;
  if (int rc = parse_lint_options(flags, options, err); rc != 0) return rc;
  Result<SpecificationGraph> spec =
      load_spec(flags.positional()[0], SpecParseOptions{.validate = false});
  if (!spec.ok()) {
    err << spec.error().message << '\n';
    return 2;
  }
  const LintReport report = lint(spec.value(), options);
  if (flags.get_bool("json"))
    out << report.to_json().dump(2) << '\n';
  else
    out << report.to_text();
  return report.exit_code();
}

int cmd_flexibility(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  if (args.empty()) {
    err << "flexibility: missing <spec.json>\n";
    return 2;
  }
  Result<SpecificationGraph> spec = load_spec(args[0]);
  if (!spec.ok()) {
    err << spec.error().message << '\n';
    return 1;
  }
  const HierarchicalGraph& p = spec.value().problem();
  out << "maximal flexibility: " << format_double(max_flexibility(p)) << '\n';
  Table table({"cluster", "depth", "f(subtree)", "f(G_P) without it"});
  for (ClusterId cid : p.all_refinement_clusters()) {
    const double without = flexibility(p, [&](ClusterId c) { return c != cid; });
    table.add_row({p.cluster(cid).name,
                   std::to_string(p.ancestry(cid).size() - 1),
                   format_double(flexibility(
                       p, cid, [](ClusterId) { return true; })),
                   format_double(without)});
  }
  out << table.to_ascii();
  return 0;
}

/// Builds solver options from the flags shared by `explore` and `analyze`.
/// Nonzero return = usage error.
int parse_solver_flags(const Flags& flags, SolverOptions& solver,
                       std::ostream& err) {
  const std::string comm = flags.get("comm");
  if (comm == "direct")
    solver.comm_model = CommModel::kDirectOnly;
  else if (comm == "anypath")
    solver.comm_model = CommModel::kAnyPath;
  else if (comm != "onehop") {
    err << "unknown --comm value '" << comm << "'\n";
    return 2;
  }
  solver.utilization_bound = flags.get_double("util-bound");
  return 0;
}

int cmd_analyze(const std::vector<std::string>& raw, std::ostream& out,
                std::ostream& err) {
  Flags flags;
  flags.define_bool("json", false, "emit the analysis as JSON");
  flags.define("comm", "onehop", "communication model: direct|onehop|anypath");
  flags.define("util-bound", "0.69", "utilization bound (0 disables)");
  if (Status s = flags.parse(raw); !s.ok()) {
    err << s.error().message << "\nflags:\n" << flags.usage();
    return 2;
  }
  if (flags.positional().empty()) {
    err << "analyze: missing <spec.json>\n";
    return 2;
  }
  // Like `lint`, analysis must work on defective specs — diagnosing them
  // is the point — so structural load-time validation is skipped.
  Result<SpecificationGraph> spec =
      load_spec(flags.positional()[0], SpecParseOptions{.validate = false});
  if (!spec.ok()) {
    err << spec.error().message << '\n';
    return 1;
  }
  AnalysisOptions options;
  if (int rc = parse_solver_flags(flags, options.solver, err); rc != 0)
    return rc;
  const SpecAnalysis analysis(spec.value().compiled(), options);
  const Json report = analysis.to_json();
  const bool empty_front = report.find("front_provably_empty") != nullptr &&
                           report.find("front_provably_empty")->as_bool();
  if (flags.get_bool("json")) {
    out << report.dump(2) << '\n';
    return empty_front ? 2 : 0;
  }
  out << analysis.to_table();
  const ClusterBounds& root = analysis.root_bounds();
  out << "whole spec: lo=" << format_double(root.lo)
      << (root.reachable()
              ? " hi=" + format_double(root.hi) + " (witness: " +
                    spec.value().allocation_names(root.witness) + ")"
              : " hi=inf (no allocation activates the root)")
      << '\n'
      << "mandatory processes: " << analysis.mandatory_processes().size()
      << '\n';
  if (empty_front)
    out << "front provably empty: the relaxation over the always-active "
           "processes is infeasible under the full allocation\n";
  return empty_front ? 2 : 0;
}

int cmd_explore(const std::vector<std::string>& raw, std::ostream& out,
                std::ostream& err) {
  Flags flags;
  flags.define("comm", "onehop", "communication model: direct|onehop|anypath");
  flags.define("util-bound", "0.69", "utilization bound (0 disables)");
  flags.define_bool("dominance-filter", true, "§5 allocation filter");
  flags.define_bool("flex-bound", true, "flexibility-estimate pruning");
  flags.define_bool("branch-bound", true, "optimistic subtree pruning");
  flags.define_bool("csv", false, "emit the front as CSV");
  flags.define_bool("json", false, "emit the full result as JSON");
  flags.define_bool("equivalents", false,
                    "also collect equal-(cost,f) alternative allocations");
  flags.define("budget", "", "also answer: best flexibility within budget");
  flags.define("target-f", "",
               "also answer: cheapest platform reaching this flexibility");
  flags.define_bool("stats", true, "print exploration statistics");
  flags.define_bool("bind-cache", true,
                    "cross-allocation binding feasibility cache "
                    "(--no-bind-cache re-solves every ECA from scratch)");
  flags.define_bool("analysis", true,
                    "static-analyzer ECA prefilter: skip solver searches the "
                    "relaxation proves infeasible (--no-analysis solves "
                    "every ECA; the front and all checkpointed counters are "
                    "identical either way)");
  flags.define_bool("hier", true,
                    "hierarchical solve path: per-cluster-group sub-solve "
                    "memoization on specs that decompose (--no-hier always "
                    "uses the flat kernel; the front is identical either "
                    "way, only solver_nodes differs)");
  flags.define("flat-cache-entries", "1024",
               "flatten-cache LRU budget: live entries (0 = unlimited)");
  flags.define("flat-cache-mb", "64",
               "flatten-cache LRU budget: approximate payload megabytes "
               "(0 = unlimited)");
  flags.define_bool("analysis-bound", false,
                    "also prune candidate allocations and stream subtrees "
                    "via the analyzer's relaxation (sound — same front — "
                    "but work counters differ from a default run)");
  flags.define_bool("preflight", true,
                    "error-severity lint gate before exploring");
  flags.define_bool("evolutionary", false, "use the heuristic EA explorer");
  flags.define("seed", "1", "EA seed");
  flags.define("threads", "1",
               "evaluation threads; 0 auto-detects one per hardware thread "
               "(std::thread::hardware_concurrency, floor 1); any value "
               "other than 1 selects the parallel cost-band engine");
  flags.define("band-target", "0",
               "adaptive-band setpoint: surviving candidates to aim for per "
               "cost band (0 = auto, scaled from the thread count); parallel "
               "engine only");
  flags.define("deadline-ms", "0",
               "wall-clock budget in milliseconds (0 = unlimited)");
  flags.define("max-solver-nodes", "0",
               "solver search-node budget (0 = unlimited)");
  flags.define("max-allocations", "0",
               "candidate-allocation budget (0 = unlimited)");
  flags.define("checkpoint", "",
               "file for the resume checkpoint of a budget-interrupted run");
  flags.define_bool("resume", false,
                    "continue from the --checkpoint file's saved state");
  if (Status s = flags.parse(raw); !s.ok()) {
    err << s.error().message << "\nflags:\n" << flags.usage();
    return 2;
  }
  if (flags.positional().empty()) {
    err << "explore: missing <spec.json>\n";
    return 2;
  }
  Result<SpecificationGraph> spec = load_spec(flags.positional()[0]);
  if (!spec.ok()) {
    err << spec.error().message << '\n';
    return 1;
  }
  if (flags.get_bool("preflight") && !preflight_ok(spec.value(), err))
    return 2;

  ExploreOptions options;
  if (int rc = parse_solver_flags(flags, options.implementation.solver, err);
      rc != 0)
    return rc;
  options.prune_dominated_allocations = flags.get_bool("dominance-filter");
  options.implementation.use_bind_cache = flags.get_bool("bind-cache");
  options.implementation.use_analysis = flags.get_bool("analysis");
  options.implementation.use_hier = flags.get_bool("hier");
  options.use_analysis_bound = flags.get_bool("analysis-bound");
  spec.value().compiled().set_flat_cache_budget(
      static_cast<std::size_t>(std::max<long>(0, flags.get_int("flat-cache-entries"))),
      static_cast<std::size_t>(std::max<long>(0, flags.get_int("flat-cache-mb")))
          << 20);

  // Second preflight stage, now that the solver options are known: the
  // analyzer's relaxation can prove the whole front empty in milliseconds,
  // where the exploration below would only confirm it by exhausting the
  // stream.  Sound, so failing here is definitive, not a heuristic.
  if (flags.get_bool("preflight")) {
    const CompiledSpec& pcs = spec.value().compiled();
    const SpecAnalysis preflight_analysis(
        pcs, AnalysisOptions{options.implementation.solver});
    AllocSet all = pcs.make_alloc_set();
    for (std::size_t i = 0; i < pcs.unit_count(); ++i) all.set(i);
    if (preflight_analysis.allocation_infeasible(all)) {
      err << "preflight: the static relaxation proves the Pareto front "
             "empty under every allocation ('sdf analyze' shows the bounds, "
             "--no-preflight explores anyway)\n";
      return 2;
    }
  }
  options.use_flexibility_bound = flags.get_bool("flex-bound");
  options.use_branch_bound = flags.get_bool("branch-bound");
  options.collect_equivalents = flags.get_bool("equivalents");
  const int threads = flags.get_int("threads");
  if (threads < 0) {
    err << "--threads must be >= 0\n";
    return 2;
  }
  options.num_threads = static_cast<std::size_t>(threads);
  const int band_target = flags.get_int("band-target");
  if (band_target < 0) {
    err << "--band-target must be >= 0\n";
    return 2;
  }
  options.band_target = static_cast<std::size_t>(band_target);

  const long deadline_ms = flags.get_int("deadline-ms");
  const long max_nodes = flags.get_int("max-solver-nodes");
  const long max_allocs = flags.get_int("max-allocations");
  if (deadline_ms < 0 || max_nodes < 0 || max_allocs < 0) {
    err << "budget flags must be >= 0\n";
    return 2;
  }
  options.budget.deadline_seconds = static_cast<double>(deadline_ms) / 1000.0;
  options.budget.max_solver_nodes = static_cast<std::uint64_t>(max_nodes);
  options.budget.max_allocations = static_cast<std::uint64_t>(max_allocs);
  const std::string checkpoint_path = flags.get("checkpoint");
  std::optional<ExploreCheckpoint> resume_state;  // outlives the run
  if (flags.get_bool("resume")) {
    if (checkpoint_path.empty()) {
      err << "--resume requires --checkpoint=<file>\n";
      return 2;
    }
    std::ifstream in(checkpoint_path, std::ios::binary);
    if (!in) {
      err << "cannot open checkpoint '" << checkpoint_path << "'\n";
      return 1;
    }
    IstreamByteReader reader(in);
    Result<ExploreCheckpoint> ck = ExploreCheckpoint::from_stream(reader);
    if (!ck.ok()) {
      err << ck.error().wrap(checkpoint_path).message << '\n';
      return 1;
    }
    resume_state = std::move(ck).value();
    options.resume = &*resume_state;
  }

  // Both engines produce bit-identical fronts; 1 thread keeps the classic
  // single-loop engine (no band machinery at all).
  const auto run_explore = [&options](const SpecificationGraph& s) {
    return options.num_threads == 1 ? explore(s, options)
                                    : parallel_explore(s, options);
  };
  // Saves the resume checkpoint (if requested) and picks the exit code:
  // 0 = complete front, 3 = partial result because the budget ran out.
  const auto finish = [&checkpoint_path, &err](const ExploreResult& result) {
    if (!checkpoint_path.empty() && result.checkpoint.has_value()) {
      std::ofstream ck(checkpoint_path);
      if (!ck) {
        err << "cannot write checkpoint '" << checkpoint_path << "'\n";
        return 1;
      }
      ck << result.checkpoint->to_string() << '\n';
    }
    if (!result.status.ok()) {
      err << result.status.error().message << '\n';
      return 1;
    }
    if (result.stats.stop_reason == StopReason::kCompleted) return 0;
    err << "partial result: " << stop_reason_name(result.stats.stop_reason)
        << " budget exhausted; front exact below cost "
        << format_double(result.stats.exact_up_to_cost);
    if (!checkpoint_path.empty()) err << "; continue with --resume";
    err << '\n';
    return 3;
  };

  if (flags.get_bool("json") && !flags.get_bool("evolutionary")) {
    const ExploreResult result = run_explore(spec.value());
    out << explore_result_to_json(spec.value(), result).dump(2) << '\n';
    return finish(result);
  }

  if (!flags.get("budget").empty() || !flags.get("target-f").empty()) {
    const ExploreResult result = run_explore(spec.value());
    if (!flags.get("budget").empty()) {
      const double budget = flags.get_double("budget");
      if (const Implementation* best =
              max_flexibility_within_budget(result, budget)) {
        out << "within budget " << format_double(budget) << ": f="
            << format_double(best->flexibility) << " at $"
            << format_double(best->cost) << " ("
            << spec.value().allocation_names(best->units) << ")\n";
      } else {
        out << "within budget " << format_double(budget)
            << ": nothing feasible\n";
      }
    }
    if (!flags.get("target-f").empty()) {
      const double target = flags.get_double("target-f");
      if (const Implementation* best =
              min_cost_for_flexibility(result, target)) {
        out << "flexibility >= " << format_double(target) << ": $"
            << format_double(best->cost) << " ("
            << spec.value().allocation_names(best->units) << ")\n";
      } else {
        out << "flexibility >= " << format_double(target)
            << ": unreachable (max " << format_double(result.max_flexibility)
            << ")\n";
      }
    }
    return finish(result);
  }

  std::vector<Implementation> front;
  ExploreStats stats;
  double f_max = 0.0;
  int exit_code = 0;
  if (flags.get_bool("evolutionary")) {
    EaOptions ea;
    ea.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    ea.implementation = options.implementation;
    ea.budget = options.budget;
    const EaResult result = explore_evolutionary(spec.value(), ea);
    front = result.front;
    f_max = max_flexibility(spec.value().problem());
    if (result.stats.stop_reason != StopReason::kCompleted) {
      err << "partial result: " << stop_reason_name(result.stats.stop_reason)
          << " budget exhausted\n";
      exit_code = 3;
    }
  } else {
    ExploreResult result = run_explore(spec.value());
    front = result.front;
    stats = result.stats;
    f_max = result.max_flexibility;
    exit_code = finish(result);
    if (exit_code == 1) return exit_code;  // failed run: nothing to print
  }

  Table table({"cost", "flexibility", "resources", "clusters"});
  for (const Implementation& impl : front) {
    std::string clusters;
    for (ClusterId c : impl.leaf_clusters(spec.value().problem())) {
      if (!clusters.empty()) clusters += ", ";
      clusters += spec.value().problem().cluster(c).name;
    }
    table.add_row({format_double(impl.cost), format_double(impl.flexibility),
                   spec.value().allocation_names(impl.units), clusters});
  }
  out << (flags.get_bool("csv") ? table.to_csv() : table.to_ascii());
  if (!flags.get_bool("evolutionary") && flags.get_bool("stats")) {
    out << "f_max=" << format_double(f_max)
        << " universe=" << stats.universe
        << " candidates=" << stats.candidates_generated
        << " possible_allocations=" << stats.possible_allocations
        << " attempts=" << stats.implementation_attempts
        << " solver_calls=" << stats.solver_calls
        << " solver_nodes=" << stats.solver_nodes
        << " cache_hits_feasible=" << stats.cache_hits_feasible
        << " cache_hits_infeasible=" << stats.cache_hits_infeasible
        << " cache_revalidations=" << stats.cache_revalidations
        << " cache_entries=" << stats.cache_entries
        << " analysis_pruned=" << stats.analysis_pruned
        << " hier_subsolves=" << stats.hier_subsolves
        << " hier_hits=" << stats.hier_hits
        << " flat_cache_entries=" << stats.flat_cache_entries
        << " flat_cache_evictions=" << stats.flat_cache_evictions;
    if (stats.threads != 0) {
      out << " threads=" << stats.threads << " bands=" << stats.bands
          << " band_capacity_last=" << stats.band_capacity_last;
    }
    if (stats.stop_reason != StopReason::kCompleted) {
      out << " stop_reason=" << stop_reason_name(stats.stop_reason)
          << " budget_abandoned=" << stats.budget_abandoned
          << " exact_up_to_cost=" << format_double(stats.exact_up_to_cost);
    }
    out << '\n';
  }
  return exit_code;
}

int cmd_upgrade(const std::vector<std::string>& raw, std::ostream& out,
                std::ostream& err) {
  Flags flags;
  flags.define("existing", "", "comma-separated unit names already deployed");
  flags.define_bool("preflight", true,
                    "error-severity lint gate before exploring");
  if (Status s = flags.parse(raw); !s.ok()) {
    err << s.error().message << "\nflags:\n" << flags.usage();
    return 2;
  }
  if (flags.positional().empty()) {
    err << "upgrade: missing <spec.json>\n";
    return 2;
  }
  Result<SpecificationGraph> spec = load_spec(flags.positional()[0]);
  if (!spec.ok()) {
    err << spec.error().message << '\n';
    return 1;
  }
  if (flags.get_bool("preflight") && !preflight_ok(spec.value(), err))
    return 2;
  AllocSet existing = spec.value().make_alloc_set();
  for (const std::string& raw_name : split(flags.get("existing"), ',')) {
    const std::string name(trim(raw_name));
    if (name.empty()) continue;
    const AllocUnitId u = spec.value().find_unit(name);
    if (!u.valid()) {
      err << "unknown unit '" << name << "'\n";
      return 2;
    }
    existing.set(u.index());
  }

  const UpgradeResult r = explore_upgrades(spec.value(), existing);
  out << "deployed: "
      << (existing.none() ? "(nothing)"
                          : spec.value().allocation_names(existing))
      << "  f=" << format_double(r.baseline_flexibility) << " of "
      << format_double(r.max_flexibility) << '\n';
  Table table({"upgrade cost", "total cost", "flexibility", "added units"});
  for (const Upgrade& u : r.front) {
    AllocSet added = u.implementation.units;
    added -= existing;
    table.add_row({format_double(u.upgrade_cost),
                   format_double(u.implementation.cost),
                   format_double(u.implementation.flexibility),
                   spec.value().allocation_names(added)});
  }
  out << table.to_ascii();
  return 0;
}

/// Parses a comma-separated unit-name list into an allocation.
Result<AllocSet> parse_alloc(const SpecificationGraph& spec,
                             const std::string& list) {
  AllocSet a = spec.make_alloc_set();
  for (const std::string& raw_name : split(list, ',')) {
    const std::string name(trim(raw_name));
    if (name.empty()) continue;
    const AllocUnitId u = spec.find_unit(name);
    if (!u.valid()) return Error{"unknown unit '" + name + "'"};
    a.set(u.index());
  }
  return a;
}

int cmd_sensitivity(const std::vector<std::string>& raw, std::ostream& out,
                    std::ostream& err) {
  Flags flags;
  flags.define("alloc", "", "comma-separated unit names (empty = all)");
  flags.define_bool("preflight", true,
                    "error-severity lint gate before analyzing");
  if (Status s = flags.parse(raw); !s.ok()) {
    err << s.error().message << '\n';
    return 2;
  }
  if (flags.positional().empty()) {
    err << "sensitivity: missing <spec.json>\n";
    return 2;
  }
  Result<SpecificationGraph> spec = load_spec(flags.positional()[0]);
  if (!spec.ok()) {
    err << spec.error().message << '\n';
    return 1;
  }
  if (flags.get_bool("preflight") && !preflight_ok(spec.value(), err))
    return 2;
  Result<AllocSet> alloc = parse_alloc(spec.value(), flags.get("alloc"));
  if (!alloc.ok()) {
    err << alloc.error().message << '\n';
    return 2;
  }
  if (alloc.value().none()) {
    for (std::size_t i = 0; i < spec.value().alloc_units().size(); ++i)
      alloc.value().set(i);
  }

  const SensitivityReport report =
      flexibility_sensitivity(spec.value(), alloc.value());
  out << "implemented flexibility: " << format_double(report.flexibility)
      << '\n';
  Table table({"unit", "cost", "f loss", "loss per $", "verdict"});
  for (const UnitSensitivity& u : report.units) {
    table.add_row({spec.value().alloc_units()[u.unit.index()].name,
                   format_double(u.cost), format_double(u.flexibility_loss),
                   format_double(u.loss_per_cost, 4),
                   u.critical ? "critical"
                              : (u.flexibility_loss > 0 ? "carrier"
                                                        : "redundant")});
  }
  out << table.to_ascii();
  return 0;
}

int cmd_reduce(const std::vector<std::string>& raw, std::ostream& out,
               std::ostream& err) {
  Flags flags;
  flags.define("alloc", "", "comma-separated unit names to allocate");
  if (Status s = flags.parse(raw); !s.ok()) {
    err << s.error().message << '\n';
    return 2;
  }
  if (flags.positional().empty()) {
    err << "reduce: missing <spec.json>\n";
    return 2;
  }
  Result<SpecificationGraph> spec = load_spec(flags.positional()[0]);
  if (!spec.ok()) {
    err << spec.error().message << '\n';
    return 1;
  }
  Result<AllocSet> alloc = parse_alloc(spec.value(), flags.get("alloc"));
  if (!alloc.ok()) {
    err << alloc.error().message << '\n';
    return 2;
  }
  const SpecificationGraph reduced =
      reduce_specification(spec.value(), alloc.value());
  const Result<std::string> text = spec_to_string(reduced);
  if (!text.ok()) {
    err << text.error().message << '\n';
    return 1;
  }
  out << text.value() << '\n';
  return 0;
}

int cmd_dot(const std::vector<std::string>& raw, std::ostream& out,
            std::ostream& err) {
  Flags flags;
  flags.define("graph", "problem",
               "which graph: problem|architecture|spec");
  if (Status s = flags.parse(raw); !s.ok()) {
    err << s.error().message << '\n';
    return 2;
  }
  if (flags.positional().empty()) {
    err << "dot: missing <spec.json>\n";
    return 2;
  }
  Result<SpecificationGraph> spec = load_spec(flags.positional()[0]);
  if (!spec.ok()) {
    err << spec.error().message << '\n';
    return 1;
  }
  const std::string which = flags.get("graph");
  if (which == "problem") {
    out << to_dot(spec.value().problem());
  } else if (which == "architecture") {
    out << to_dot(spec.value().architecture());
  } else if (which == "spec") {
    out << to_dot(spec.value(), SpecDotOptions{.title = spec.value().name()});
  } else {
    err << "unknown --graph value '" << which << "'\n";
    return 2;
  }
  return 0;
}

int cmd_generate(const std::vector<std::string>& raw, std::ostream& out,
                 std::ostream& err) {
  Flags flags;
  flags.define("seed", "1", "generator seed");
  flags.define("preset", "",
               "platform preset: settop-box|automotive-ecu|baseband-dsp|"
               "nested-s|nested-m|nested-xl (overrides the structural flags)");
  flags.define("applications", "3", "top-level alternatives");
  flags.define("processors", "2", "general-purpose processors");
  flags.define("accelerators", "2", "specialized accelerators");
  flags.define("fpga-configs", "2", "reconfigurable-device configurations");
  flags.define("tiles", "0",
               "nested-tile mode: independent root interfaces (0 = off; see "
               "also --preset nested-*)");
  flags.define("tile-depth", "3", "nested-tile mode: hierarchy depth");
  flags.define("tile-processors", "2",
               "nested-tile mode: local cpus per tile per depth level");
  flags.define("tile-alternatives", "2",
               "nested-tile mode: repeated templates per interface");
  flags.define("tile-processes", "2",
               "nested-tile mode: chain length per template");
  flags.define_bool("tile-bus", false,
                    "nested-tile mode: add one global bus across all cpus");
  if (Status s = flags.parse(raw); !s.ok()) {
    err << s.error().message << "\nflags:\n" << flags.usage();
    return 2;
  }
  GeneratorParams params;
  params.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  if (const std::string preset = flags.get("preset"); !preset.empty()) {
    static constexpr PlatformPreset kAll[] = {
        PlatformPreset::kSetTopBox, PlatformPreset::kAutomotiveEcu,
        PlatformPreset::kBasebandDsp, PlatformPreset::kNestedS,
        PlatformPreset::kNestedM, PlatformPreset::kNestedXl};
    bool found = false;
    for (const PlatformPreset p : kAll) {
      if (preset == preset_name(p)) {
        params = preset_params(p, params.seed);
        found = true;
        break;
      }
    }
    if (!found) {
      err << "generate: unknown preset '" << preset << "'\n";
      return 2;
    }
  } else {
    params.applications =
        static_cast<std::size_t>(flags.get_int("applications"));
    params.processors = static_cast<std::size_t>(flags.get_int("processors"));
    params.accelerators =
        static_cast<std::size_t>(flags.get_int("accelerators"));
    params.fpga_configs =
        static_cast<std::size_t>(flags.get_int("fpga-configs"));
    params.tiles = static_cast<std::size_t>(flags.get_int("tiles"));
    if (params.tiles > 0) {
      params.max_depth = static_cast<std::size_t>(
          std::max<long>(1, flags.get_int("tile-depth")));
    }
    params.tile_processors =
        static_cast<std::size_t>(flags.get_int("tile-processors"));
    params.tile_alternatives =
        static_cast<std::size_t>(flags.get_int("tile-alternatives"));
    params.tile_processes =
        static_cast<std::size_t>(flags.get_int("tile-processes"));
    params.tile_bus = flags.get_bool("tile-bus");
  }
  const Result<std::string> text = spec_to_string(generate_spec(params));
  if (!text.ok()) {
    err << text.error().message << '\n';
    return 1;
  }
  out << text.value() << '\n';
  return 0;
}

int cmd_demo(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.empty()) {
    err << "demo: expected 'settop' or 'decoder'\n";
    return 2;
  }
  SpecificationGraph spec =
      args[0] == "settop"
          ? models::make_settop_spec()
          : (args[0] == "decoder" ? models::make_tv_decoder_spec()
                                  : SpecificationGraph("?"));
  if (spec.name() == "?") {
    err << "unknown demo '" << args[0] << "'\n";
    return 2;
  }
  out << spec_to_string(spec).value() << '\n';
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) return usage(err);
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "validate") return cmd_validate(rest, out, err);
  if (command == "lint") return cmd_lint(rest, out, err);
  if (command == "flexibility") return cmd_flexibility(rest, out, err);
  if (command == "analyze") return cmd_analyze(rest, out, err);
  if (command == "explore") return cmd_explore(rest, out, err);
  if (command == "upgrade") return cmd_upgrade(rest, out, err);
  if (command == "sensitivity") return cmd_sensitivity(rest, out, err);
  if (command == "reduce") return cmd_reduce(rest, out, err);
  if (command == "dot") return cmd_dot(rest, out, err);
  if (command == "generate") return cmd_generate(rest, out, err);
  if (command == "demo") return cmd_demo(rest, out, err);
  err << "unknown command '" << command << "'\n";
  return usage(err);
}

}  // namespace sdf
