// The `sdf` command-line tool, as a testable library function.
//
// Subcommands:
//   sdf validate <spec.json>             lint gate: errors + warnings; exit
//                                        code 0/1/2 by max severity
//   sdf lint <spec.json> [...]           full rule-based diagnostics (see
//                                        docs/LINT.md); --list catalogues
//   sdf flexibility <spec.json>          Def. 4 analysis of the problem graph
//   sdf explore <spec.json> [...]        EXPLORE; prints the Pareto front
//   sdf dot <spec.json> [--graph=...]    DOT rendering to stdout
//   sdf generate [--seed=...] [...]      synthetic spec JSON to stdout
//   sdf demo <settop|decoder>            built-in paper models as JSON
//
// `run_cli` is what `tools/sdf` calls with argv; tests call it with argument
// vectors and inspect the streams.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sdf {

/// Runs one CLI invocation.  `args` excludes the program name.  Returns the
/// process exit code (0 = success).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace sdf
