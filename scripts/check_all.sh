#!/usr/bin/env bash
# Single entry point for every local gate, in cheap-to-expensive order:
#
#   1. scripts/check.sh        build, ctest, benches, ASan+UBSan suite
#   2. scripts/check_tsan.sh   ThreadSanitizer over the concurrency tests
#   3. scripts/check_tidy.sh   clang-tidy profile (skips if not installed)
#   4. sdf lint                zero-diagnostic gate over examples/specs/
set -euo pipefail
cd "$(dirname "$0")/.."

scripts/check.sh
scripts/check_tsan.sh
scripts/check_tidy.sh

echo "==================== sdf lint examples/specs ===================="
SDF=build/tools/sdf
if [ ! -x "$SDF" ]; then
  echo "check_all: $SDF missing after check.sh" >&2
  exit 1
fi
for spec in examples/specs/*.json; do
  echo "lint $spec"
  "$SDF" lint "$spec"
done

echo "ALL GATES PASSED"
