#!/usr/bin/env bash
# Single entry point for every local gate, in cheap-to-expensive order:
#
#   1. scripts/check.sh        build, ctest, benches, ASan+UBSan suite
#   2. scripts/check_tsan.sh   ThreadSanitizer over the concurrency tests
#   3. fault injection         SDF_FAULT_INJECTION=ON + TSan, armed-site tests
#   4. fuzz harnesses          front-door parsers under ASan+UBSan, ~60s each
#   5. scripts/check_tidy.sh   clang-tidy profile (skips if not installed)
#   6. sdf lint                zero-diagnostic gate over examples/specs/
set -euo pipefail
cd "$(dirname "$0")/.."

scripts/check.sh
scripts/check_tsan.sh

echo "==================== fault injection (tsan) ===================="
# Dedicated tree: the injection points are compiled in only here, so the
# production build stays injection-free.  TSan proves the pool's unwind
# paths (throwing worker, bad_alloc, delayed task) are race-free.
FAULT_BUILD=build-faultsan
FAULT_TESTS=(fault_injection_test parallel_explore_test anytime_test bind_cache_test)
cmake -B "$FAULT_BUILD" -DSDF_FAULT_INJECTION=ON -DSDF_SANITIZE=thread
cmake --build "$FAULT_BUILD" --target "${FAULT_TESTS[@]}" -j "$(nproc)"
for t in "${FAULT_TESTS[@]}"; do
  echo "-------------------- $t (fault+tsan) --------------------"
  "$FAULT_BUILD/tests/$t"
done

echo "==================== fuzz harnesses (asan+ubsan) ===================="
# Continuous fuzzing of the untrusted front doors: the spec parser
# (differential single-shot vs chunked), the lint pipeline, and the
# checkpoint loader.  Reuses the instrumented tree check.sh built, so
# crashes, leaks, and UB all abort.  ~60s per harness (override with
# SDF_FUZZ_TIME); the standalone driver uses a fixed seed, so a CI failure
# reproduces locally.  On a crash the reproducer is copied into
# fuzz/corpus/<harness>/ — commit it, and every future run replays it.
FUZZ_BUILD=build-addresssan
cmake -B "$FUZZ_BUILD" -DSDF_SANITIZE=address -DSDF_FUZZ=ON
cmake --build "$FUZZ_BUILD" --target fuzz_spec_parse fuzz_lint fuzz_checkpoint \
  -j "$(nproc)"
FUZZ_TIME="${SDF_FUZZ_TIME:-60}"
rm -f crash-*.bin
for h in spec_parse lint checkpoint; do
  echo "-------------------- fuzz_$h (${FUZZ_TIME}s) --------------------"
  if ! UBSAN_OPTIONS=halt_on_error=1 \
      "$FUZZ_BUILD/fuzz/fuzz_$h" -max_total_time="$FUZZ_TIME" \
      "fuzz/corpus/$h"; then
    cp -v crash-*.bin "fuzz/corpus/$h/" 2>/dev/null || true
    echo "check_all: fuzz_$h failed; reproducers copied to fuzz/corpus/$h" >&2
    exit 1
  fi
done

scripts/check_tidy.sh

echo "==================== kernel perf smoke ===================="
# Count-based, not wall-clock: asserts every bitset kernel agrees with a
# per-bit reference on word-boundary sizes AND touches fewer words than the
# per-bit model (ceil(bits/64) < bits).  Deterministic, so it cannot flake
# on a loaded CI box the way a timing threshold would.
KERNEL_BENCH=build/bench/bench_kernels
if [ ! -x "$KERNEL_BENCH" ]; then
  echo "check_all: $KERNEL_BENCH missing after check.sh" >&2
  exit 1
fi
"$KERNEL_BENCH" --smoke

echo "==================== sdf lint examples/specs ===================="
SDF=build/tools/sdf
if [ ! -x "$SDF" ]; then
  echo "check_all: $SDF missing after check.sh" >&2
  exit 1
fi
for spec in examples/specs/*.json; do
  echo "lint $spec"
  "$SDF" lint "$spec"
done

echo "============ binding cache: front equivalence on examples ============"
# The cache may only change work counters, never verdicts: the JSON front
# with and without --no-bind-cache must be byte-identical, sequentially and
# under the parallel engine's shared cache.  Only the "front" key is
# compared — stats legitimately differ (wall time, cache counters).
extract_front() {
  python3 -c 'import json,sys; print(json.dumps(json.load(sys.stdin)["front"], indent=1))'
}
for spec in examples/specs/*.json; do
  for threads in 1 4; do
    echo "front diff (threads=$threads) $spec"
    "$SDF" explore --json --no-stats --threads "$threads" "$spec" \
      | extract_front > /tmp/sdf_front_cache_on.$$
    "$SDF" explore --json --no-stats --threads "$threads" --no-bind-cache "$spec" \
      | extract_front > /tmp/sdf_front_cache_off.$$
    diff -u /tmp/sdf_front_cache_on.$$ /tmp/sdf_front_cache_off.$$ || {
      echo "check_all: cache-on/off fronts differ for $spec (threads=$threads)" >&2
      exit 1
    }
  done
done
rm -f /tmp/sdf_front_cache_on.$$ /tmp/sdf_front_cache_off.$$

echo "======== hierarchical solve: front equivalence, hier vs --no-hier ========"
# The hierarchical path decomposes the binding query; it may change only
# the node counters, never a verdict.  Fronts with and without --no-hier
# must be byte-identical on every example spec (settop/decoder exercise the
# not-decomposable fallback, nested.json the real per-group path), both
# sequentially and under the parallel engine's shared HierCache.
for spec in examples/specs/*.json; do
  for threads in 1 4; do
    echo "hier front diff (threads=$threads) $spec"
    "$SDF" explore --json --no-stats --threads "$threads" "$spec" \
      | extract_front > /tmp/sdf_front_hier_on.$$
    "$SDF" explore --json --no-stats --threads "$threads" --no-hier "$spec" \
      | extract_front > /tmp/sdf_front_hier_off.$$
    diff -u /tmp/sdf_front_hier_on.$$ /tmp/sdf_front_hier_off.$$ || {
      echo "check_all: hier/no-hier fronts differ for $spec (threads=$threads)" >&2
      exit 1
    }
  done
done
# The equivalence above would be vacuous if the hierarchical path silently
# never engaged: assert it actually decomposes nested.json (sub-solves > 0)
# and correctly stands down on the paper models (sub-solves == 0).
"$SDF" explore --json examples/specs/nested.json | python3 -c '
import json, sys
stats = json.load(sys.stdin)["stats"]
assert stats["hier_subsolves"] > 0, "hier path never engaged on nested.json"
assert stats["solver_nodes"] < stats["solver_calls"], (
    "per-group memoization should need fewer nodes than queries on nested.json")
'
"$SDF" explore --json examples/specs/settop.json | python3 -c '
import json, sys
stats = json.load(sys.stdin)["stats"]
assert stats["hier_subsolves"] == 0, "hier path engaged on a flat-only spec"
'
rm -f /tmp/sdf_front_hier_on.$$ /tmp/sdf_front_hier_off.$$

echo "============ static analyzer: sound bounds, identical fronts ============"
# Two contracts, asserted per example spec:
#   1. The solved front lies inside the analyzer's whole-spec cost interval
#      (every front point costs at least the root lower bound — the bound
#      is a theorem, so a violation is a bug, not noise).
#   2. The analyzer may only remove solver work, never change results: the
#      JSON front with --no-analysis and with --analysis-bound must be
#      byte-identical to the default run.
for spec in examples/specs/*.json; do
  echo "analyze gate $spec"
  "$SDF" analyze --json "$spec" > /tmp/sdf_analysis.$$
  "$SDF" explore --json --no-stats "$spec" \
    | extract_front > /tmp/sdf_front_default.$$
  "$SDF" explore --json --no-stats --no-analysis "$spec" \
    | extract_front > /tmp/sdf_front_noanalysis.$$
  "$SDF" explore --json --no-stats --analysis-bound "$spec" \
    | extract_front > /tmp/sdf_front_abound.$$
  diff -u /tmp/sdf_front_default.$$ /tmp/sdf_front_noanalysis.$$ || {
    echo "check_all: --no-analysis changed the front for $spec" >&2
    exit 1
  }
  diff -u /tmp/sdf_front_default.$$ /tmp/sdf_front_abound.$$ || {
    echo "check_all: --analysis-bound changed the front for $spec" >&2
    exit 1
  }
  python3 - /tmp/sdf_analysis.$$ /tmp/sdf_front_default.$$ <<'PY'
import json, sys
analysis = json.load(open(sys.argv[1]))
front = json.load(open(sys.argv[2]))
roots = [c for c in analysis["clusters"] if c["root"]]
assert len(roots) == 1, "expected exactly one root cluster"
lo = roots[0]["lo"]
for point in front:
    assert point["cost"] >= lo - 1e-9, (
        f"front point at cost {point['cost']} below analyzer bound {lo}")
if front:
    assert roots[0]["reachable"], "nonempty front but root declared dead"
PY
done
rm -f /tmp/sdf_analysis.$$ /tmp/sdf_front_default.$$ \
      /tmp/sdf_front_noanalysis.$$ /tmp/sdf_front_abound.$$

echo "ALL GATES PASSED"
