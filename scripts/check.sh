#!/usr/bin/env bash
# Full local verification: configure, build, test, run every bench's table
# part.  Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure --timeout 120

for b in build/bench/bench_*; do
  echo "==================== ${b##*/} ===================="
  "$b" --benchmark_min_time=0.01
done

# Memory-error pass: the whole test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (SDF_SANITIZE=address wires both) in its own
# instrumented tree.
echo "==================== ASan+UBSan test suite ===================="
cmake -B build-addresssan -DSDF_SANITIZE=address
cmake --build build-addresssan -j "$(nproc)"
UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-addresssan --output-on-failure --timeout 240

echo "ALL CHECKS PASSED"
