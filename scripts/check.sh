#!/usr/bin/env bash
# Full local verification: configure, build, test, run every bench's table
# part.  Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  echo "==================== ${b##*/} ===================="
  "$b" --benchmark_min_time=0.01
done

echo "ALL CHECKS PASSED"
