#!/usr/bin/env bash
# Data-race check for the parallel EXPLORE engine: builds the concurrency-
# relevant tests with ThreadSanitizer in a dedicated tree (sanitizers need
# whole-program instrumentation) and runs them.
#
#   scripts/check_tsan.sh            # -fsanitize=thread
#   SDF_SANITIZE=address scripts/check_tsan.sh   # AddressSanitizer instead
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${SDF_SANITIZE:-thread}"
BUILD="build-${SANITIZER}san"
TESTS=(util_test dyn_bitset_test explore_test bind_test bind_cache_test
       parallel_explore_test anytime_test fault_injection_test)

cmake -B "$BUILD" -DSDF_SANITIZE="$SANITIZER"
cmake --build "$BUILD" --target "${TESTS[@]}" -j "$(nproc)"

for t in "${TESTS[@]}"; do
  echo "==================== $t (${SANITIZER}san) ===================="
  "$BUILD/tests/$t"
done
echo "SANITIZER CHECKS PASSED (${SANITIZER})"
