#!/usr/bin/env bash
# clang-tidy over the library sources using the .clang-tidy profile at the
# repo root.  Needs a configured build tree for compile_commands.json (the
# top-level CMakeLists exports it unconditionally).
#
#   scripts/check_tidy.sh              # lint all of src/
#   scripts/check_tidy.sh src/lint     # lint one subtree
#
# The gate is *required* wherever clang-tidy can be expected: under CI (the
# workflow installs LLVM) or when SDF_REQUIRE_TIDY=1, a missing binary is a
# failure, not a skip.  Local boxes without LLVM still get a notice-and-skip
# so the aggregate scripts/check_all.sh stays usable.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [ -n "${SDF_REQUIRE_TIDY:-}" ] || [ -n "${CI:-}" ]; then
    echo "check_tidy: clang-tidy not found but the gate is required" \
         "(CI/SDF_REQUIRE_TIDY set); install LLVM" >&2
    exit 1
  fi
  echo "check_tidy: clang-tidy not found; skipping" \
       "(install LLVM to enable, SDF_REQUIRE_TIDY=1 makes this fatal)"
  exit 0
fi

BUILD=build
if [ ! -f "$BUILD/compile_commands.json" ]; then
  cmake -B "$BUILD" >/dev/null
fi

SCOPE="${1:-src}"
mapfile -t FILES < <(find "$SCOPE" -name '*.cpp' | sort)
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "check_tidy: no sources under '$SCOPE'"
  exit 1
fi

echo "check_tidy: ${#FILES[@]} file(s) under $SCOPE"
clang-tidy -p "$BUILD" --quiet "${FILES[@]}"
echo "TIDY CHECKS PASSED"
