#!/usr/bin/env bash
# clang-tidy over the library sources using the .clang-tidy profile at the
# repo root.  Needs a configured build tree for compile_commands.json (the
# top-level CMakeLists exports it unconditionally).
#
#   scripts/check_tidy.sh              # lint all of src/
#   scripts/check_tidy.sh src/lint     # lint one subtree
#
# Exits 0 with a notice when clang-tidy is not installed, so the aggregate
# scripts/check_all.sh stays usable on boxes without LLVM.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "check_tidy: clang-tidy not found; skipping (install LLVM to enable)"
  exit 0
fi

BUILD=build
if [ ! -f "$BUILD/compile_commands.json" ]; then
  cmake -B "$BUILD" >/dev/null
fi

SCOPE="${1:-src}"
mapfile -t FILES < <(find "$SCOPE" -name '*.cpp' | sort)
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "check_tidy: no sources under '$SCOPE'"
  exit 1
fi

echo "check_tidy: ${#FILES[@]} file(s) under $SCOPE"
clang-tidy -p "$BUILD" --quiet "${FILES[@]}"
echo "TIDY CHECKS PASSED"
