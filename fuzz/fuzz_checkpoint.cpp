// Fuzz harness for the checkpoint loader (`--resume` front door).
//
// A checkpoint file is untrusted input: it may be truncated, bit-flipped,
// or handcrafted (huge counters, fractional unit indices, wrong version).
// The loader must reject hostile documents with a clean error — never
// crash, leak, or hit UB (the double→integer casts here were a real bug).
//
// For inputs the loader accepts, serialization must be a fixed point:
// to_string ∘ from_string ∘ to_string == to_string.  A failed round trip
// means the loader accepts states the writer cannot represent, which
// would silently corrupt a resumed run.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "explore/checkpoint.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  sdf::Result<sdf::ExploreCheckpoint> ck =
      sdf::ExploreCheckpoint::from_string(text);
  if (!ck.ok()) return 0;

  const std::string first = ck.value().to_string();
  sdf::Result<sdf::ExploreCheckpoint> again =
      sdf::ExploreCheckpoint::from_string(first);
  if (!again.ok()) {
    std::fprintf(stderr,
                 "fuzz_checkpoint: accepted input failed to round-trip: %s\n",
                 again.error().message.c_str());
    std::abort();
  }
  if (again.value().to_string() != first) {
    std::fprintf(stderr,
                 "fuzz_checkpoint: serialization is not a fixed point\n");
    std::abort();
  }

  // The streaming loader must agree with the string loader byte for byte.
  sdf::StringViewByteReader reader(text, size == 0 ? 1 : 1 + (size % 64));
  sdf::Result<sdf::ExploreCheckpoint> streamed =
      sdf::ExploreCheckpoint::from_stream(reader);
  if (!streamed.ok() || streamed.value().to_string() != first) {
    std::fprintf(stderr,
                 "fuzz_checkpoint: from_stream diverged from from_string\n");
    std::abort();
  }
  return 0;
}

#include "fuzz_driver.hpp"
