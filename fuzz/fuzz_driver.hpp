// Standalone fallback driver for the fuzz harnesses.
//
// When a harness is built with Clang, libFuzzer supplies main() and this
// header compiles to nothing (SDF_FUZZ_LIBFUZZER).  Under GCC — the only
// compiler in the CI image — this header provides a main() that accepts a
// libFuzzer-compatible command line:
//
//   fuzz_foo [flags] [corpus-dir-or-file ...]
//     -runs=N            stop after N mutated executions (default 0 = no cap)
//     -max_total_time=S  stop after S seconds of mutation (default 10)
//     -seed=N            PRNG seed (default fixed, so CI runs are
//                        reproducible; pass a different seed to explore)
//
// Every corpus input is replayed once, then a mutation loop derives new
// inputs from random corpus entries via splitmix64-driven byte edits and
// a small JSON-aware token dictionary.  There is no coverage feedback —
// this driver trades libFuzzer's guidance for determinism and zero extra
// dependencies; the corpus seeds carry the structural coverage.
//
// On SIGSEGV/SIGABRT/SIGBUS/SIGILL/SIGFPE the input being executed is
// dumped (async-signal-safely) to crash-<harness>-<iteration>.bin in the
// current directory, then the signal is re-raised so the exit status still
// reflects the crash.  scripts/check_all.sh collects those reproducers
// into fuzz/corpus/.
#pragma once

#ifndef SDF_FUZZ_LIBFUZZER

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace sdf_fuzz {

// The input currently inside LLVMFuzzerTestOneInput, for the crash dump.
// Plain globals: the handler may fire at any point during execution.
inline const std::uint8_t* g_data = nullptr;
inline std::size_t g_size = 0;
inline char g_crash_path[256] = "crash-fuzz.bin";

inline void crash_handler(int sig) {
  // Only async-signal-safe calls from here down.
  const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    const std::uint8_t* p = g_data;
    std::size_t left = g_size;
    while (left > 0) {
      const ssize_t n = ::write(fd, p, left);
      if (n <= 0) break;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
  const char msg[] = "\nfuzz driver: reproducer written to ";
  (void)!::write(2, msg, sizeof(msg) - 1);
  (void)!::write(2, g_crash_path, ::strlen(g_crash_path));
  (void)!::write(2, "\n", 1);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

inline std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline void run_one(const std::vector<std::uint8_t>& input) {
  g_data = input.data();
  g_size = input.size();
  (void)LLVMFuzzerTestOneInput(input.data(), input.size());
  g_data = nullptr;
  g_size = 0;
}

// Structure-aware seasoning for the byte-level mutator: tokens the
// schema readers actually dispatch on, plus numeric edge cases.
inline const char* const kDictionary[] = {
    "\"name\"",     "\"kind\"",    "\"nodes\"",        "\"edges\"",
    "\"clusters\"", "\"ports\"",   "\"mapping\"",      "\"mappings\"",
    "\"problem\"",  "\"architecture\"",                "\"root\"",
    "\"attrs\"",    "\"interface\"",                   "\"vertex\"",
    "\"from\"",     "\"to\"",      "\"src_port\"",     "\"dst_port\"",
    "\"direction\"",               "\"in\"",           "\"out\"",
    "\"process\"",  "\"resource\"","\"latency\"",      "\"version\"",
    "\"front\"",    "\"pending\"", "\"frontier\"",     "\"counters\"",
    "\"units\"",    "\"equivalents\"",                 "\"spec_digest\"",
    "\"options_digest\"",          "\"emitted\"",      "\"pruned\"",
    "null",         "true",        "false",            "1e999",
    "-1e309",       "1e-999",      "0.5",              "18446744073709551616",
    "4294967296",   "\\u0041",     "\\uDC00",          "{}",
    "[]",           "{\"a\":",     "[[",               "\"\"",
};

inline std::vector<std::uint8_t> mutate(
    const std::vector<std::vector<std::uint8_t>>& corpus, std::uint64_t& rng) {
  std::vector<std::uint8_t> out;
  if (!corpus.empty())
    out = corpus[splitmix64(rng) % corpus.size()];
  const int edits = 1 + static_cast<int>(splitmix64(rng) % 4);
  for (int e = 0; e < edits; ++e) {
    switch (splitmix64(rng) % 6) {
      case 0: {  // flip a byte
        if (out.empty()) break;
        out[splitmix64(rng) % out.size()] =
            static_cast<std::uint8_t>(splitmix64(rng));
        break;
      }
      case 1: {  // insert a random byte
        const std::size_t at = out.empty() ? 0 : splitmix64(rng) % out.size();
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   static_cast<std::uint8_t>(splitmix64(rng)));
        break;
      }
      case 2: {  // erase a short range
        if (out.empty()) break;
        const std::size_t at = splitmix64(rng) % out.size();
        const std::size_t len =
            std::min<std::size_t>(1 + splitmix64(rng) % 16, out.size() - at);
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(at),
                  out.begin() + static_cast<std::ptrdiff_t>(at + len));
        break;
      }
      case 3: {  // truncate
        if (out.empty()) break;
        out.resize(splitmix64(rng) % out.size());
        break;
      }
      case 4: {  // splice a window from another corpus entry
        if (corpus.empty()) break;
        const auto& other = corpus[splitmix64(rng) % corpus.size()];
        if (other.empty()) break;
        const std::size_t from = splitmix64(rng) % other.size();
        const std::size_t len =
            std::min<std::size_t>(1 + splitmix64(rng) % 64, other.size() - from);
        const std::size_t at = out.empty() ? 0 : splitmix64(rng) % out.size();
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   other.begin() + static_cast<std::ptrdiff_t>(from),
                   other.begin() + static_cast<std::ptrdiff_t>(from + len));
        break;
      }
      default: {  // insert a dictionary token
        const char* tok =
            kDictionary[splitmix64(rng) %
                        (sizeof(kDictionary) / sizeof(kDictionary[0]))];
        const std::size_t at = out.empty() ? 0 : splitmix64(rng) % out.size();
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   reinterpret_cast<const std::uint8_t*>(tok),
                   reinterpret_cast<const std::uint8_t*>(tok + ::strlen(tok)));
        break;
      }
    }
  }
  // Keep mutated inputs small: the harnesses cap resources anyway, and
  // small inputs execute orders of magnitude more iterations per second.
  if (out.size() > (std::size_t{1} << 16)) out.resize(std::size_t{1} << 16);
  return out;
}

inline int driver_main(int argc, char** argv) {
  std::uint64_t seed = 0x5dff00d5dff00d1ULL;  // fixed: CI is reproducible
  long long runs = 0;
  long long max_total_time = 10;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtoll(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::strtoll(arg.c_str() + 16, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore unknown libFuzzer flags so shared invocations keep working.
      std::fprintf(stderr, "fuzz driver: ignoring flag %s\n", arg.c_str());
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
        if (!entry.is_regular_file()) continue;
        std::ifstream in(entry.path(), std::ios::binary);
        corpus.emplace_back(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>());
      }
    } else {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "fuzz driver: cannot open %s\n", path.c_str());
        return 2;
      }
      corpus.emplace_back(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
    }
  }

  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGILL, SIGFPE})
    ::signal(sig, &crash_handler);

  const char* name = argc > 0 ? argv[0] : "fuzz";
  if (const char* slash = std::strrchr(name, '/')) name = slash + 1;

  // Phase 1: replay every corpus input unmodified.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    std::snprintf(g_crash_path, sizeof(g_crash_path), "crash-%s-corpus-%zu.bin",
                  name, i);
    run_one(corpus[i]);
  }
  std::fprintf(stderr, "fuzz driver: replayed %zu corpus inputs\n",
               corpus.size());

  // Phase 2: mutation loop until -runs or -max_total_time is exhausted.
  const auto start = std::chrono::steady_clock::now();
  long long executed = 0;
  while (true) {
    if (runs > 0 && executed >= runs) break;
    if (max_total_time > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      if (elapsed >= max_total_time) break;
    }
    std::snprintf(g_crash_path, sizeof(g_crash_path), "crash-%s-%lld.bin", name,
                  executed);
    run_one(mutate(corpus, seed));
    ++executed;
  }
  std::fprintf(stderr, "fuzz driver: %lld mutated executions, no crashes\n",
               executed);
  return 0;
}

}  // namespace sdf_fuzz

int main(int argc, char** argv) { return sdf_fuzz::driver_main(argc, argv); }

#endif  // SDF_FUZZ_LIBFUZZER
