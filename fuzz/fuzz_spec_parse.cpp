// Differential fuzz harness for the specification front door.
//
// Every input is parsed twice: single-shot (spec_from_string, the whole
// text in one chunk) and streamed through an input-derived chunk size.
// The two paths must agree exactly — same accept/reject verdict, same
// error message (offsets included), and for accepted inputs the same
// canonical serialization.  Any divergence is a chunk-boundary bug in the
// incremental parser, the one class of defect unit tests are worst at
// catching, so the harness aborts on it just as hard as on a crash.
//
// Resource caps are tightened well below the ingest defaults: the fuzzer
// should spend its time exploring parser states, not allocating 256 MiB
// documents.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "spec/spec_io.hpp"
#include "util/byte_reader.hpp"

namespace {

sdf::SpecParseOptions fuzz_options() {
  sdf::SpecParseOptions options;
  options.limits.max_total_bytes = 1 << 20;
  options.limits.max_string_bytes = 1 << 16;
  options.limits.max_nodes = 1 << 16;
  return options;
}

[[noreturn]] void divergence(const char* what, const std::string& single,
                             const std::string& streamed) {
  std::fprintf(stderr,
               "fuzz_spec_parse: single-shot and streamed parse diverged "
               "(%s)\n  single:   %s\n  streamed: %s\n",
               what, single.c_str(), streamed.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const sdf::SpecParseOptions options = fuzz_options();

  sdf::Result<sdf::SpecificationGraph> single =
      sdf::spec_from_string(text, options);

  // Chunk size is derived from the input so the corpus explores many
  // different chunk boundaries; 1..64 covers every state-machine edge.
  const std::size_t chunk = size == 0 ? 1 : 1 + (size % 64);
  sdf::StringViewByteReader reader(text, chunk);
  sdf::Result<sdf::SpecificationGraph> streamed =
      sdf::spec_from_stream(reader, options);

  if (single.ok() != streamed.ok())
    divergence("verdict",
               single.ok() ? "<ok>" : single.error().message,
               streamed.ok() ? "<ok>" : streamed.error().message);
  if (!single.ok()) {
    if (single.error().message != streamed.error().message)
      divergence("error message", single.error().message,
                 streamed.error().message);
    return 0;
  }

  sdf::Result<std::string> a = sdf::spec_to_string(single.value());
  sdf::Result<std::string> b = sdf::spec_to_string(streamed.value());
  if (a.ok() != b.ok())
    divergence("serialization verdict", a.ok() ? "<ok>" : a.error().message,
               b.ok() ? "<ok>" : b.error().message);
  if (a.ok() && a.value() != b.value())
    divergence("serialized text", a.value(), b.value());
  return 0;
}

#include "fuzz_driver.hpp"
