// Fuzz harness for the diagnostic pipeline behind the front door.
//
// The lint tools deliberately parse with validation off so they can load
// a defective specification and report every finding — which means the
// lint engine and (for validating specs) the compiler must tolerate any
// graph the lenient parser can produce.  This harness drives exactly that
// pipeline: lenient parse, lint, and — when the spec also validates —
// CompiledSpec construction.  Crashes, leaks, and UB are the findings;
// the sanitizers (build with -DSDF_SANITIZE=address) turn them fatal.
#include <cstdint>
#include <string_view>

#include "lint/lint.hpp"
#include "spec/compiled.hpp"
#include "spec/spec_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  sdf::SpecParseOptions options;
  options.validate = false;
  options.limits.max_total_bytes = 1 << 20;
  options.limits.max_string_bytes = 1 << 16;
  options.limits.max_nodes = 1 << 16;

  sdf::Result<sdf::SpecificationGraph> spec =
      sdf::spec_from_string(text, options);
  if (!spec.ok()) return 0;

  // The full rule registry must survive whatever the lenient parse built.
  (void)sdf::lint(spec.value());

  // Compilation assumes a structurally valid specification; gate on the
  // same check the validating front door runs.
  if (spec.value().validate().ok()) {
    const sdf::CompiledSpec compiled(spec.value());
    (void)compiled;
  }
  return 0;
}

#include "fuzz_driver.hpp"
